package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	spectral "repro"
	"repro/internal/delta"
	"repro/internal/journal"
	"repro/internal/resilience"
	"repro/internal/speccache"
	"repro/internal/specstore"
	"repro/internal/trace"
)

// Config sizes a Pool. Zero fields select the noted defaults.
type Config struct {
	// Workers is the number of concurrent executors. Default
	// GOMAXPROCS, capped at 8.
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker;
	// submissions beyond it are rejected with ErrQueueFull. Default 64.
	QueueDepth int
	// CacheEntries bounds the spectrum cache (decompositions, not
	// bytes). Default 32.
	CacheEntries int
	// MaxJobs bounds the number of finished jobs retained for status
	// queries; the oldest finished jobs are forgotten first. Default
	// 1024.
	MaxJobs int
	// MaxQueueWait, when positive, bounds how long a job may sit queued
	// before a worker picks it up; a job exceeding it fails instead of
	// running against a deadline it has already blown. Default 0 (no
	// bound).
	MaxQueueWait time.Duration
	// ShedPolicy selects what admission control does under sustained
	// queue pressure. Default ShedNone.
	ShedPolicy ShedPolicy
	// Journal, when set, makes the pool durable: accepted jobs and
	// their terminal states are logged so a restarted daemon can replay
	// them (see Restore). Default nil (no durability).
	Journal *journal.Journal
	// EigenPolicy configures the eigensolver resilience ladder for the
	// pool's decompositions; the zero value selects the library
	// defaults. The chaos harness injects deterministic fault plans
	// through it.
	EigenPolicy resilience.EigenPolicy
	// CompactEvery is the number of journaled terminal transitions
	// between automatic journal compactions. Default 1024.
	CompactEvery int
	// Store, when set, is the persistent spectrum tier behind the
	// in-memory LRU: cache misses consult it before computing, computed
	// entries are written through to it, and LRU evictions spill into
	// it. The pool does not close it. Default nil (no persistence).
	Store specstore.Store
	// BatchWindow, when positive, coalesces concurrent spectrum
	// requests: a job needing a decomposition waits up to BatchWindow
	// for other jobs with the same (netlist fingerprint, model) to
	// arrive, then one decomposition sized to the batch's largest
	// request (prefix-maximal pairs) serves every member. Default 0
	// (batching disabled; the cache's singleflight still coalesces
	// exactly-concurrent computes).
	BatchWindow time.Duration
	// BatchMax fires a batch early once it holds this many members.
	// Default 16 (only meaningful when BatchWindow > 0).
	BatchMax int
	// DisableWarmStart makes KindDelta jobs solve cold instead of
	// seeding the eigensolve from the base netlist's cached spectrum.
	// Escape hatch and A/B lever; warm results are bit-checked against
	// cold in tests, so the default is on. Default false (warm starts
	// enabled).
	DisableWarmStart bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 32
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 1024
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	return c
}

// StageStats accumulates latency for one pipeline stage across jobs.
type StageStats struct {
	Count        uint64  `json:"count"`
	TotalSeconds float64 `json:"totalSeconds"`
}

// Stats is a snapshot of the pool for /metrics.
type Stats struct {
	Pending, Running, Done, Failed, Cancelled int
	Submitted, Rejected                       uint64
	QueueDepth, QueueCapacity, Workers        int
	Cache                                     speccache.Stats
	QueueWait, Spectrum, Solve                StageStats
	// Batch aggregates the window wait of jobs that went through a
	// spectrum batch (zero when batching is disabled).
	Batch StageStats
	// Batches counts fired batch windows; BatchedJobs the members they
	// delivered a decomposition to.
	Batches, BatchedJobs uint64
	// Computed counts eigendecompositions this process actually solved
	// — as opposed to serving from the LRU, the persistent store
	// (StoreHits) or a shard peer (RemoteHits). A warm restart against
	// a populated store should leave Computed at zero.
	Computed, StoreHits, RemoteHits uint64
	// Warm* count KindDelta eigensolves by warm-start outcome (see
	// spectral.WarmInfo): Accepted refreshed the base spectrum without
	// solving, Seeded started Lanczos from it, Rejected fell back to a
	// cold solve after the seed failed its checks, Cold never attempted
	// the seed (warm starts disabled, or no usable base spectrum).
	WarmAccepted, WarmSeeded, WarmRejected, WarmCold uint64
	// Shed reports the admission controller's state and counters.
	Shed ShedStats
	// JournalErrors counts journal appends that failed (durable or
	// buffered); nonzero means the next compaction must succeed before
	// new work is durable again.
	JournalErrors uint64
	// Panics counts jobs that crashed the pipeline and were isolated
	// (the job failed; the worker survived).
	Panics uint64
	// RetryAfterSeconds is the current backoff hint quoted to rejected
	// clients.
	RetryAfterSeconds float64
}

// Pool runs jobs on a fixed set of workers fed by a bounded FIFO queue.
type Pool struct {
	cfg        Config
	cache      *speccache.Cache
	queue      chan *Job
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	// runFn executes one job's work; tests substitute it to get
	// deterministic slow/blocking workloads.
	runFn func(ctx context.Context, j *Job) (*Result, error)

	// tracer, when set, receives per-job spans: a "job" root with a
	// retroactive "job.queue" child (queue wait) and a "job.run" child
	// wrapping the pipeline, whose own spans nest beneath it.
	tracer *trace.Tracer

	// jnl, when non-nil, receives lifecycle records (see durable.go);
	// shed and lat feed admission control (see overload.go).
	jnl  *journal.Journal
	shed *shedder
	lat  latRing

	// batcher coalesces spectrum requests (nil when BatchWindow is 0);
	// remote, when set via SetRemote before Start, proxies spectrum
	// lookups to the shard peer owning the fingerprint.
	batcher *batcher
	remote  RemoteSpectrum

	// Spectrum tier counters (see Stats). Atomic because they are
	// updated from compute closures and batch fires that run outside
	// the pool lock.
	computed     atomic.Uint64
	storeHits    atomic.Uint64
	remoteHits   atomic.Uint64
	batchesFired atomic.Uint64
	batchedJobs  atomic.Uint64
	warmAccepted atomic.Uint64
	warmSeeded   atomic.Uint64
	warmRejected atomic.Uint64
	warmCold     atomic.Uint64

	mu            sync.Mutex
	jobs          map[string]*Job
	order         []string // insertion order, for bounded retention
	seq           int
	closed        bool
	submitted     uint64
	rejected      uint64
	panics        uint64
	journalErrors uint64
	finishSince   int  // terminal records since the last compaction
	compacting    bool // a compaction is in flight
	restored      *RestoreStats
	snapshotExtra func() []journal.Record
	waitAgg       StageStats
	specAgg       StageStats
	solveAgg      StageStats
	batchWaitAgg  StageStats
}

// NewPool creates a stopped pool; call Start to launch the workers.
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		cfg:        cfg,
		cache:      speccache.New(cfg.CacheEntries),
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		jnl:        cfg.Journal,
		shed:       newShedder(cfg.ShedPolicy, cfg.QueueDepth),
	}
	p.runFn = p.run
	if cfg.Store != nil {
		// Spill LRU evictions to the persistent tier so capacity pressure
		// demotes decompositions instead of destroying them.
		p.cache.SetOnEvict(func(key speccache.Key, e speccache.Entry) {
			sp, ok := e.Value.(*spectral.Spectrum)
			if !ok {
				return
			}
			sk := specstore.Key{Hash: key.Hash, Model: key.Model}
			if cfg.Store.Has(sk, e.Pairs) {
				return
			}
			if data, err := spectral.EncodeSpectrum(sp); err == nil {
				_ = cfg.Store.Put(sk, specstore.Entry{Pairs: e.Pairs, Data: data})
			}
		})
	}
	if cfg.BatchWindow > 0 {
		p.batcher = newBatcher(p, cfg.BatchWindow, cfg.BatchMax)
	}
	return p
}

// Start launches the worker goroutines.
func (p *Pool) Start() {
	for i := 0; i < p.cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

// Cache exposes the spectrum cache (for metrics).
func (p *Pool) Cache() *speccache.Cache { return p.cache }

// Store exposes the persistent spectrum tier (nil when unconfigured),
// for metrics.
func (p *Pool) Store() specstore.Store { return p.cfg.Store }

// SetRemote attaches a shard-peer spectrum fetcher. Call before Start;
// a nil remote (the default) keeps all spectrum work local.
func (p *Pool) SetRemote(r RemoteSpectrum) { p.remote = r }

// RemoteSpectrum proxies spectrum traffic to the shard peer owning a
// fingerprint. Implementations return ok == false (not an error) when
// the key is owned locally, the peer misses, or the peer is down — the
// pool then computes locally, so a dead peer degrades throughput, never
// availability.
type RemoteSpectrum interface {
	// Fetch retrieves an encoded spectrum (EncodeSpectrum format) with
	// capacity >= pairs for (hash, model) from the owning peer.
	Fetch(ctx context.Context, hash, model string, pairs int) (data []byte, ok bool, err error)
	// Offer pushes a locally computed spectrum toward the owning peer,
	// best-effort, so the shard's owner converges on holding its keys.
	Offer(hash, model string, pairs int, data []byte)
}

// SetTracer attaches a tracer to the pool's job executions. Call before
// Start; a nil tracer (the default) leaves jobs untraced.
func (p *Pool) SetTracer(t *trace.Tracer) { p.tracer = t }

// Submit validates and enqueues a request. It never blocks: a full
// queue returns ErrQueueFull, a shut-down pool ErrShuttingDown. On a
// durable pool the job is journaled before Submit returns — an error
// wrapping ErrJournal means the job was not durably accepted and the
// caller must not acknowledge it.
func (p *Pool) Submit(req Request) (*Job, error) {
	if req.Netlist == nil {
		return nil, fmt.Errorf("jobs: nil netlist")
	}
	if req.Kind == "" {
		req.Kind = KindPartition
	}
	if req.Kind != KindPartition && req.Kind != KindOrder && req.Kind != KindDelta {
		return nil, fmt.Errorf("jobs: unknown kind %q", req.Kind)
	}
	if err := spectral.ValidateNetlist(req.Netlist); err != nil {
		return nil, err
	}
	switch req.Kind {
	case KindPartition:
		if err := req.Opts.Validate(req.Netlist); err != nil {
			return nil, err
		}
	case KindDelta:
		if req.BaseNetlist == nil {
			return nil, fmt.Errorf("jobs: delta job without a base netlist")
		}
		if err := spectral.ValidateNetlist(req.BaseNetlist); err != nil {
			return nil, fmt.Errorf("jobs: base netlist: %w", err)
		}
		if req.BaseNetlist.NumModules() != req.Netlist.NumModules() {
			return nil, fmt.Errorf("jobs: delta netlist has %d modules, base has %d — ECO deltas preserve the module population",
				req.Netlist.NumModules(), req.BaseNetlist.NumModules())
		}
		if err := req.Opts.Validate(req.Netlist); err != nil {
			return nil, err
		}
		if req.BaseHash == "" {
			req.BaseHash = speccache.Fingerprint(req.BaseNetlist)
		}
	case KindOrder:
		if req.Scheme < 0 || req.Scheme > 3 {
			return nil, fmt.Errorf("jobs: scheme = %d, want 0..3", req.Scheme)
		}
		if req.D < 0 {
			return nil, fmt.Errorf("jobs: d = %d, want >= 0", req.D)
		}
	}
	if req.Hash == "" {
		req.Hash = speccache.Fingerprint(req.Netlist)
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrShuttingDown
	}

	// Admission control: under sustained pressure, degrade the job to a
	// cheaper decomposition or reject it outright (see overload.go).
	var shedFromD int
	if p.shed.observe(len(p.queue)) {
		switch p.cfg.ShedPolicy {
		case ShedReject:
			p.rejected++
			p.mu.Unlock()
			p.shed.noteRejected()
			return nil, ErrQueueFull
		case ShedDegrade:
			req, shedFromD = degradeRequest(req)
			if shedFromD != 0 {
				p.shed.noteDegraded()
			}
		}
	}

	p.seq++
	ctx, cancel := p.jobContext(req)
	now := time.Now()
	j := &Job{
		id:        fmt.Sprintf("job-%06d", p.seq),
		req:       req,
		ctx:       ctx,
		cancel:    cancel,
		shedFromD: shedFromD,
		state:     Pending,
		created:   now,
		enqueued:  now,
		done:      make(chan struct{}),
	}
	select {
	case p.queue <- j:
		p.jobs[j.id] = j
		p.order = append(p.order, j.id)
		p.submitted++
		p.retainLocked()
	default:
		cancel()
		p.rejected++
		p.mu.Unlock()
		return nil, ErrQueueFull
	}
	p.mu.Unlock()

	// Journal outside the pool lock: the durable append fsyncs, and an
	// fsync must never serialize submissions behind it. On failure the
	// job was not durably accepted, so retract it entirely: the cancel
	// makes whichever worker dequeues it retire it immediately, and
	// removing it from the maps keeps a job the client was told failed
	// out of the jobs API and out of compaction snapshots.
	if err := p.journalSubmit(j); err != nil {
		j.cancel()
		p.mu.Lock()
		delete(p.jobs, j.id)
		for i := len(p.order) - 1; i >= 0; i-- {
			if p.order[i] == j.id {
				p.order = append(p.order[:i], p.order[i+1:]...)
				break
			}
		}
		p.submitted--
		p.mu.Unlock()
		return nil, err
	}
	return j, nil
}

// jobContext derives a job's context from the pool's base context,
// anchoring the request deadline (which covers queue wait) at
// submission time.
func (p *Pool) jobContext(req Request) (context.Context, context.CancelFunc) {
	if req.Timeout > 0 {
		return context.WithTimeout(p.baseCtx, req.Timeout)
	}
	return context.WithCancel(p.baseCtx)
}

// degradeRequest lowers the eigenvector count of a sheddable request,
// returning the possibly-modified request and the original d (0 when
// nothing changed). Requests whose method takes no spectrum pass
// through untouched — there is no d to shed.
func degradeRequest(req Request) (Request, int) {
	switch req.Kind {
	case KindOrder:
		if nd, ok := degradeD(req.D); ok {
			orig := req.D
			req.D = nd
			return req, effectiveD(orig)
		}
	case KindPartition, KindDelta:
		if spec := req.Opts.SpectrumSpec(); spec.Needed {
			if nd, ok := degradeD(req.Opts.D); ok {
				orig := req.Opts.D
				req.Opts.D = nd
				return req, effectiveD(orig)
			}
		}
	}
	return req, 0
}

// effectiveD maps the "use the default" spelling d=0 to the default it
// selects, so shedFromD records what the client would have gotten.
func effectiveD(d int) int {
	if d <= 0 {
		return 10
	}
	return d
}

// retainLocked forgets the oldest finished jobs beyond MaxJobs. Pending
// and running jobs are never forgotten.
func (p *Pool) retainLocked() {
	excess := len(p.jobs) - p.cfg.MaxJobs
	if excess <= 0 {
		return
	}
	kept := p.order[:0]
	for _, id := range p.order {
		j := p.jobs[id]
		if excess > 0 && j != nil && isTerminal(j.State()) {
			delete(p.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	p.order = kept
}

func isTerminal(s State) bool { return s == Done || s == Failed || s == Cancelled }

// Job returns a tracked job by ID.
func (p *Pool) Job(id string) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	return j, ok
}

// Jobs returns status snapshots of all tracked jobs, oldest first.
func (p *Pool) Jobs() []Status {
	p.mu.Lock()
	ids := append([]string(nil), p.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := p.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	p.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation of a job. It returns false if the job is
// unknown or already finished.
func (p *Pool) Cancel(id string) bool {
	j, ok := p.Job(id)
	if !ok || isTerminal(j.State()) {
		return false
	}
	// Buffered, not durable: losing a cancel record across a crash only
	// re-runs a job the client no longer wants — wasteful, not wrong.
	p.appendJournal(journal.Record{Type: journal.TypeCancel, ID: id, UnixNS: time.Now().UnixNano()})
	j.cancel()
	return true
}

// Shutdown stops accepting work and waits for the queue to drain. If
// ctx expires first, all pending and running jobs are cancelled and
// Shutdown waits for the workers to acknowledge. The spectrum cache
// survives until the pool is garbage collected; the pool cannot be
// restarted.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	if !already {
		close(p.queue)
	}
	p.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		p.baseCancel() // cancel running and queued jobs
		// Workers may be stuck in long solves that take time to observe
		// the cancellation, leaving queued jobs no worker will retire
		// before Shutdown must return. Drain them here: the queue channel
		// is closed, so this range terminates, and channel semantics
		// guarantee each job is retired exactly once (either by a worker
		// or by this loop).
		for j := range p.queue {
			st := j.finish(nil, context.Canceled, true, time.Now())
			j.cancel()
			p.journalFinish(j, st, nil, context.Canceled)
		}
		<-drained
	}
	p.baseCancel()
	return err
}

// Stats returns a snapshot of the pool's counters for /metrics.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	s := Stats{
		Submitted:         p.submitted,
		Rejected:          p.rejected,
		QueueDepth:        len(p.queue),
		QueueCapacity:     p.cfg.QueueDepth,
		Workers:           p.cfg.Workers,
		QueueWait:         p.waitAgg,
		Spectrum:          p.specAgg,
		Solve:             p.solveAgg,
		Batch:             p.batchWaitAgg,
		Batches:           p.batchesFired.Load(),
		BatchedJobs:       p.batchedJobs.Load(),
		Computed:          p.computed.Load(),
		StoreHits:         p.storeHits.Load(),
		RemoteHits:        p.remoteHits.Load(),
		WarmAccepted:      p.warmAccepted.Load(),
		WarmSeeded:        p.warmSeeded.Load(),
		WarmRejected:      p.warmRejected.Load(),
		WarmCold:          p.warmCold.Load(),
		JournalErrors:     p.journalErrors,
		Panics:            p.panics,
		Shed:              p.shed.stats(),
		RetryAfterSeconds: RetryAfter(len(p.queue), p.cfg.Workers, p.lat.p50()).Seconds(),
	}
	jobs := make([]*Job, 0, len(p.jobs))
	for _, j := range p.jobs {
		jobs = append(jobs, j)
	}
	p.mu.Unlock()
	for _, j := range jobs {
		switch j.State() {
		case Pending:
			s.Pending++
		case Running:
			s.Running++
		case Done:
			s.Done++
		case Failed:
			s.Failed++
		case Cancelled:
			s.Cancelled++
		}
	}
	s.Cache = p.cache.Stats()
	return s
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.execute(j)
	}
}

func (p *Pool) execute(j *Job) {
	now := time.Now()
	if err := j.ctx.Err(); err != nil {
		// Cancelled, deadline-expired, or the pool shut down while
		// queued. A blown deadline is a failure, not a cancellation: the
		// client asked for the work, the daemon ran out of time.
		st := j.finish(nil, err, errors.Is(err, context.Canceled), now)
		j.cancel() // release the deadline timer, if any
		p.journalFinish(j, st, nil, err)
		return
	}
	if w := p.cfg.MaxQueueWait; w > 0 && now.Sub(j.enqueued) > w {
		err := fmt.Errorf("jobs: queued %v, exceeding max queue wait %v", now.Sub(j.enqueued).Round(time.Millisecond), w)
		st := j.finish(nil, err, false, now)
		j.cancel()
		p.journalFinish(j, st, nil, err)
		if p.tracer != nil {
			p.tracer.Add("jobs.queue-wait-exceeded", 1)
		}
		return
	}
	ctx := j.ctx
	if p.tracer != nil {
		ctx = trace.WithTracer(ctx, p.tracer)
	}
	ctx, jspan := trace.Start(ctx, "job",
		trace.Str("job", j.id), trace.Str("kind", string(j.req.Kind)), trace.Str("method", j.req.Opts.Method.String()))
	// The queue wait already happened; record it retroactively as the
	// job's first child so queue-wait vs run time splits per trace.
	_, qspan := trace.StartAt(ctx, "job.queue", j.created)
	qspan.End()
	j.markStarted(now)
	p.appendJournal(journal.Record{Type: journal.TypeStart, ID: j.id, UnixNS: now.UnixNano()})
	rctx, rspan := trace.Start(ctx, "job.run")
	res, err := p.runJobIsolated(rctx, j)
	rspan.End()
	p.lat.add(time.Since(now))
	cancelled := err != nil && resilience.IsContextError(err) && !errors.Is(err, context.DeadlineExceeded)
	if err != nil {
		jspan.Annotate(trace.Str("error", err.Error()))
	}
	jspan.End()
	st := j.finish(res, err, cancelled, time.Now())
	j.cancel()
	p.journalFinish(j, st, res, err)
	p.mu.Lock()
	j.mu.Lock()
	p.waitAgg.Count++
	p.waitAgg.TotalSeconds += j.queueDur.Seconds()
	p.specAgg.Count++
	p.specAgg.TotalSeconds += j.spectrumDur.Seconds()
	p.solveAgg.Count++
	p.solveAgg.TotalSeconds += j.solveDur.Seconds()
	if j.batchMembers > 0 {
		p.batchWaitAgg.Count++
		p.batchWaitAgg.TotalSeconds += j.batchDur.Seconds()
	}
	j.mu.Unlock()
	p.mu.Unlock()
}

// runJobIsolated runs the job's work with panic isolation: a panic that
// escapes the pipeline (the façade recovers its own, but test seams and
// future kinds may not) fails the job instead of killing the worker —
// one poisoned job must not take down the daemon's capacity.
func (p *Pool) runJobIsolated(ctx context.Context, j *Job) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("jobs: job %s panicked: %v\n%s", j.id, r, debug.Stack())
			p.mu.Lock()
			p.panics++
			p.mu.Unlock()
			if p.tracer != nil {
				p.tracer.Add("jobs.panics", 1)
			}
		}
	}()
	return p.runFn(ctx, j)
}

// run executes one job through the façade with spectrum reuse.
func (p *Pool) run(ctx context.Context, j *Job) (*Result, error) {
	req := j.req
	switch req.Kind {
	case KindOrder:
		spec := spectral.OrderSpectrumSpec(req.D)
		sp, hit, err := p.spectrum(ctx, j, spec)
		if err != nil {
			return nil, err
		}
		t := time.Now()
		order, err := spectral.OrderModulesWithSpectrum(ctx, req.Netlist, sp, req.D, req.Scheme)
		j.recordSolve(time.Since(t))
		if err != nil {
			return nil, err
		}
		return &Result{Order: order, SpectrumCacheHit: hit}, nil
	case KindDelta:
		return p.runDelta(ctx, j)
	default: // KindPartition
		var (
			sp  *spectral.Spectrum
			hit bool
			err error
		)
		if spec := req.Opts.SpectrumSpec(); spec.Needed {
			sp, hit, err = p.spectrum(ctx, j, spec)
			if err != nil {
				return nil, err
			}
		}
		t := time.Now()
		part, err := spectral.PartitionWithSpectrum(ctx, req.Netlist, sp, req.Opts)
		j.recordSolve(time.Since(t))
		if err != nil {
			return nil, err
		}
		return &Result{
			Assign:           part.Assign,
			K:                part.K,
			NetCut:           spectral.NetCut(req.Netlist, part),
			ScaledCost:       spectral.ScaledCost(req.Netlist, part),
			SpectrumCacheHit: hit,
		}, nil
	}
}

// runDelta executes a KindDelta job: partition the mutated netlist with
// an eigensolve warm-started from the base netlist's spectrum, then
// compare the result against the base partition.
//
// The base spectrum is resolved through the same tier ladder as any
// other job's (an ECO against a netlist the daemon just partitioned
// finds it in the LRU; a cold daemon computes it — it is needed for the
// stability report's base partition regardless). The mutated netlist's
// spectrum is cached under its own fingerprint, so a repeated delta
// submission is a pure cache hit and solves nothing.
func (p *Pool) runDelta(ctx context.Context, j *Job) (*Result, error) {
	req := j.req
	res := &Result{BaseHash: req.BaseHash, WarmStart: spectral.WarmOutcomeCold}
	if req.Delta != nil && req.BaseNetlist != nil {
		// Re-derive the perturbation reach from the journaled delta; Apply
		// on an already-validated delta is O(nets) and deterministic.
		if _, reach, err := delta.Apply(req.BaseNetlist, req.Delta); err == nil {
			res.Reach = &reach
		}
	}

	var (
		sp, baseSp *spectral.Spectrum
		hit        bool
	)
	if spec := req.Opts.SpectrumSpec(); spec.Needed {
		t := time.Now()
		pairs := spec.D + 1
		if n := req.Netlist.NumModules(); pairs > n {
			pairs = n
		}
		baseKey := speccache.Key{Hash: req.BaseHash, Model: spec.Model.String()}
		var err error
		baseSp, _, err = p.fetchSpectrum(ctx, req.BaseNetlist, baseKey, spec.Model, pairs, true)
		if err != nil {
			j.recordSpectrum(time.Since(t))
			return nil, fmt.Errorf("jobs: base spectrum: %w", err)
		}
		seed := baseSp
		if p.cfg.DisableWarmStart {
			seed = nil
		}
		var warm spectral.WarmInfo
		key := speccache.Key{Hash: req.Hash, Model: spec.Model.String()}
		sp, hit, err = p.fetchSpectrumSeeded(ctx, req.Netlist, key, spec.Model, pairs, true, seed, &warm)
		j.recordSpectrum(time.Since(t))
		if err != nil {
			return nil, err
		}
		if hit {
			// Served from a cache tier: no eigensolve ran, so there was no
			// warm-start event to classify.
			res.WarmStart = "cached"
		} else if warm.Outcome != "" {
			res.WarmStart = warm.Outcome
		}
	}

	t := time.Now()
	defer func() { j.recordSolve(time.Since(t)) }()
	part, err := spectral.PartitionWithSpectrum(ctx, req.Netlist, sp, req.Opts)
	if err != nil {
		return nil, err
	}
	res.Assign, res.K = part.Assign, part.K
	res.NetCut = spectral.NetCut(req.Netlist, part)
	res.ScaledCost = spectral.ScaledCost(req.Netlist, part)
	res.SpectrumCacheHit = hit

	// Stability report: partition the base with its (already resolved)
	// spectrum and align labels. A base-side failure degrades the report
	// — the delta partition above is the job's answer and stands.
	if basePart, berr := spectral.PartitionWithSpectrum(ctx, req.BaseNetlist, baseSp, req.Opts); berr == nil {
		if st, serr := spectral.PartitionStability(req.BaseNetlist, req.Netlist, basePart, part); serr == nil {
			res.Stability = st
		}
	} else if resilience.IsContextError(berr) {
		return nil, berr
	}
	return res, nil
}

// noteWarm counts a warm-start outcome for Stats.
func (p *Pool) noteWarm(outcome string) {
	switch outcome {
	case spectral.WarmOutcomeAccepted:
		p.warmAccepted.Add(1)
	case spectral.WarmOutcomeSeeded:
		p.warmSeeded.Add(1)
	case spectral.WarmOutcomeRejected:
		p.warmRejected.Add(1)
	default:
		p.warmCold.Add(1)
	}
}

// spectrum fetches (or computes and caches) the decomposition the job
// needs, going through the batch window when batching is enabled.
func (p *Pool) spectrum(ctx context.Context, j *Job, spec spectral.SpectrumSpec) (*spectral.Spectrum, bool, error) {
	t := time.Now()
	defer func() { j.recordSpectrum(time.Since(t)) }()
	pairs := spec.D + 1
	if n := j.req.Netlist.NumModules(); pairs > n {
		pairs = n
	}
	key := speccache.Key{Hash: j.req.Hash, Model: spec.Model.String()}
	if p.batcher != nil {
		return p.batcher.fetch(ctx, j, key, spec.Model, pairs)
	}
	return p.fetchSpectrum(ctx, j.req.Netlist, key, spec.Model, pairs, true)
}

// fetchSpectrum resolves a decomposition through the tier ladder:
// in-memory LRU, persistent store, shard peer (when allowRemote), then
// a local eigensolve sized to pairs. The cache's singleflight wraps the
// whole ladder, so concurrent requests for one key walk it once. The
// reported hit covers every tier but the eigensolve: callers learn
// whether the job skipped its O(d·n²) compute, not which tier paid.
//
// The compute itself runs under the pool's base context, not the
// caller's: cancelling one job must not poison the shared fetch other
// jobs may be waiting on; pool shutdown still aborts it.
func (p *Pool) fetchSpectrum(ctx context.Context, h *spectral.Netlist, key speccache.Key, model spectral.Model, pairs int, allowRemote bool) (*spectral.Spectrum, bool, error) {
	return p.fetchSpectrumSeeded(ctx, h, key, model, pairs, allowRemote, nil, nil)
}

// fetchSpectrumSeeded is fetchSpectrum with an optional warm-start
// seed: when the ladder bottoms out in a local eigensolve and warm is
// non-nil, the solve goes through the warm-start path using seed (which
// may itself be nil — a deliberate cold run that still reports an
// outcome) and the outcome lands in *warm. A cache or tier hit leaves
// *warm untouched: nothing was solved, so no warm outcome happened.
func (p *Pool) fetchSpectrumSeeded(ctx context.Context, h *spectral.Netlist, key speccache.Key, model spectral.Model, pairs int, allowRemote bool, seed *spectral.Spectrum, warm *spectral.WarmInfo) (*spectral.Spectrum, bool, error) {
	var tierHit bool
	entry, hit, err := p.cache.GetOrCompute(ctx, key, pairs, func(cctx context.Context) (speccache.Entry, error) {
		if sp := p.storeLookup(h, key, pairs); sp != nil {
			tierHit = true
			p.storeHits.Add(1)
			trace.FromContext(cctx).Add("specstore.tier-hits", 1)
			return speccache.Entry{Value: sp, Pairs: sp.Pairs()}, nil
		}
		if allowRemote && p.remote != nil {
			if sp := p.remoteLookup(cctx, h, key, pairs); sp != nil {
				tierHit = true
				p.remoteHits.Add(1)
				trace.FromContext(cctx).Add("shard.remote-hits", 1)
				return speccache.Entry{Value: sp, Pairs: sp.Pairs()}, nil
			}
		}
		// Detach from the caller's cancellation but keep its trace: the
		// decompose spans nest under this job's cache.lookup span even
		// though the compute outlives the job on purpose.
		dctx := trace.Adopt(p.baseCtx, cctx)
		var (
			sp  *spectral.Spectrum
			err error
		)
		if warm != nil {
			var wi spectral.WarmInfo
			sp, wi, err = spectral.DecomposeWarmCtxPolicy(dctx, h, model, pairs-1, seed, p.cfg.EigenPolicy)
			if err == nil {
				*warm = wi
				p.noteWarm(wi.Outcome)
			}
		} else {
			sp, err = spectral.DecomposeCtxPolicy(dctx, h, model, pairs-1, p.cfg.EigenPolicy)
		}
		if err != nil {
			return speccache.Entry{}, err
		}
		p.computed.Add(1)
		p.persist(key, sp, allowRemote)
		return speccache.Entry{Value: sp, Pairs: sp.Pairs()}, nil
	})
	if err != nil {
		return nil, false, err
	}
	if !hit && !tierHit {
		// Warm-restart hint: after a crash, replay prewarms this
		// decomposition so the cache recovers along with the queue.
		p.appendJournal(journal.Record{
			Type: journal.TypeSpectrum, Hash: key.Hash, Model: key.Model,
			Pairs: entry.Pairs, UnixNS: time.Now().UnixNano(),
		})
	}
	return entry.Value.(*spectral.Spectrum), hit || tierHit, nil
}

// storeLookup tries the persistent tier. Any failure — absent key,
// undersized entry, undecodable payload — is a miss; the compute path
// repairs the store via write-through.
func (p *Pool) storeLookup(h *spectral.Netlist, key speccache.Key, pairs int) *spectral.Spectrum {
	if p.cfg.Store == nil {
		return nil
	}
	e, ok, err := p.cfg.Store.Get(specstore.Key{Hash: key.Hash, Model: key.Model})
	if err != nil || !ok || e.Pairs < pairs {
		return nil
	}
	sp, err := spectral.DecodeSpectrum(e.Data, h)
	if err != nil || sp.Pairs() < pairs {
		return nil
	}
	return sp
}

// remoteLookup asks the shard peer owning the key. A peer that is down,
// does not own the key, or misses yields nil and the caller computes
// locally.
func (p *Pool) remoteLookup(ctx context.Context, h *spectral.Netlist, key speccache.Key, pairs int) *spectral.Spectrum {
	data, ok, err := p.remote.Fetch(ctx, key.Hash, key.Model, pairs)
	if err != nil || !ok {
		return nil
	}
	sp, err := spectral.DecodeSpectrum(data, h)
	if err != nil || sp.Pairs() < pairs {
		return nil
	}
	return sp
}

// persist writes a freshly computed decomposition through to the
// persistent store and offers it to the shard peer owning its key.
// Best-effort on both counts: persistence failures cost future
// recomputes, never correctness.
func (p *Pool) persist(key speccache.Key, sp *spectral.Spectrum, offer bool) {
	offer = offer && p.remote != nil
	if p.cfg.Store == nil && !offer {
		return
	}
	data, err := spectral.EncodeSpectrum(sp)
	if err != nil {
		return
	}
	if p.cfg.Store != nil {
		_ = p.cfg.Store.Put(specstore.Key{Hash: key.Hash, Model: key.Model}, specstore.Entry{Pairs: sp.Pairs(), Data: data})
	}
	if offer {
		p.remote.Offer(key.Hash, key.Model, sp.Pairs(), data)
	}
}

// SpectrumBytes serves a shard peer's lookup from the local tiers only
// — LRU, then store. It never proxies (so forwarding chains cannot
// loop) and never computes (so a lookup storm cannot schedule work on
// the owner; the requester falls back to its own compute and offers the
// result back).
func (p *Pool) SpectrumBytes(hash, model string, pairs int) ([]byte, int, bool) {
	if pairs < 1 {
		return nil, 0, false
	}
	key := speccache.Key{Hash: hash, Model: model}
	if e, ok := p.cache.Get(key, pairs); ok {
		if sp, isSp := e.Value.(*spectral.Spectrum); isSp {
			if data, err := spectral.EncodeSpectrum(sp); err == nil {
				return data, sp.Pairs(), true
			}
		}
	}
	if p.cfg.Store != nil {
		if e, ok, err := p.cfg.Store.Get(specstore.Key{Hash: hash, Model: model}); err == nil && ok && e.Pairs >= pairs {
			return e.Data, e.Pairs, true
		}
	}
	return nil, 0, false
}

// AdoptSpectrum accepts an encoded spectrum pushed by a shard peer.
// When the daemon holds a netlist matching the hash, the payload is
// decoded (and thereby validated) against it and seeded into the LRU;
// either way it lands in the persistent store, where a later Get
// re-validates it against the real netlist before use — a peer can
// waste our disk with garbage, but cannot poison an answer.
func (p *Pool) AdoptSpectrum(hash, model string, pairs int, data []byte, h *spectral.Netlist) error {
	if pairs < 1 || len(data) == 0 {
		return fmt.Errorf("jobs: adopt spectrum: empty payload")
	}
	if h != nil {
		sp, err := spectral.DecodeSpectrum(data, h)
		if err != nil {
			return fmt.Errorf("jobs: adopt spectrum: %w", err)
		}
		if sp.Pairs() < pairs {
			return fmt.Errorf("jobs: adopt spectrum: payload holds %d pairs, header claims %d", sp.Pairs(), pairs)
		}
		p.cache.Seed(speccache.Key{Hash: hash, Model: model}, speccache.Entry{Value: sp, Pairs: sp.Pairs()})
	}
	if p.cfg.Store != nil {
		return p.cfg.Store.Put(specstore.Key{Hash: hash, Model: model}, specstore.Entry{Pairs: pairs, Data: data})
	}
	return nil
}
