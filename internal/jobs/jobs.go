// Package jobs is the execution engine of the spectrald daemon: a
// bounded FIFO queue feeding a fixed worker pool, with per-job
// cooperative cancellation wired into the façade's PartitionCtx /
// OrderModulesCtx pipeline (and through it the internal/resilience
// eigensolver ladder), and a content-addressed spectrum cache
// (internal/speccache) so repeated requests against the same netlist
// reuse one eigendecomposition across methods, K values and d-sweeps.
//
// Lifecycle: a submitted job is pending until a worker picks it up,
// running while the pipeline executes, and ends done, failed or
// cancelled. The queue is bounded: Submit never blocks, returning
// ErrQueueFull for the daemon to surface as HTTP 429 backpressure.
package jobs

import (
	"context"
	"errors"
	"sync"
	"time"

	spectral "repro"
	"repro/internal/delta"
)

// Kind selects what a job computes.
type Kind string

const (
	// KindPartition runs a full K-way partition of the netlist.
	KindPartition Kind = "partition"
	// KindOrder computes a MELO module ordering (the paper's primary
	// artifact) without splitting it.
	KindOrder Kind = "order"
	// KindDelta partitions the netlist produced by applying an ECO
	// delta to a content-addressed base, warm-starting the eigensolve
	// from the base's cached spectrum and reporting a
	// partition-stability comparison against the base partition.
	KindDelta Kind = "delta"
)

// State is a job's lifecycle state.
type State string

const (
	Pending   State = "pending"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Errors returned by Submit.
var (
	// ErrQueueFull reports that the bounded queue is at capacity; the
	// caller should retry later (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrShuttingDown reports that the pool no longer accepts work.
	ErrShuttingDown = errors.New("jobs: pool is shutting down")
)

// Request describes one unit of work.
type Request struct {
	// Netlist is the instance to process. Required.
	Netlist *spectral.Netlist
	// Hash is the netlist's content fingerprint used as the spectrum
	// cache key; empty means "compute it from the netlist".
	Hash string
	// Kind selects partition vs ordering. Default KindPartition.
	Kind Kind
	// Opts configures a KindPartition job.
	Opts spectral.Options
	// D and Scheme configure a KindOrder job (0 selects the façade
	// defaults).
	D, Scheme int
	// Timeout, when positive, is the job's end-to-end deadline measured
	// from submission — queue wait included. It propagates into the
	// job's context, so the whole solver pipeline observes it; an
	// expired deadline fails the job with context.DeadlineExceeded.
	// After a crash/replay the deadline re-anchors at restart.
	Timeout time.Duration

	// KindDelta fields. Netlist/Hash above hold the MUTATED netlist
	// (the delta already applied — the server applies it at submit
	// time so validation errors surface synchronously); BaseHash and
	// BaseNetlist identify the base whose cached spectrum seeds the
	// warm start and whose partition anchors the stability report.
	// Delta is retained for the journal, so a crash replay can rebuild
	// the mutated netlist from the (journaled) base if needed.
	BaseHash    string
	BaseNetlist *spectral.Netlist
	Delta       *delta.Delta
}

// Result is the output of a finished job.
type Result struct {
	// Assign and K hold the partitioning of a KindPartition job.
	Assign []int `json:"assign,omitempty"`
	K      int   `json:"k,omitempty"`
	// NetCut and ScaledCost evaluate the partitioning.
	NetCut     int     `json:"netCut,omitempty"`
	ScaledCost float64 `json:"scaledCost,omitempty"`
	// Order holds the module ordering of a KindOrder job.
	Order []int `json:"order,omitempty"`
	// SpectrumCacheHit reports that the job reused a cached
	// eigendecomposition and skipped its eigensolve.
	SpectrumCacheHit bool `json:"spectrumCacheHit"`

	// KindDelta extras.
	//
	// BaseHash echoes the base the delta was applied against. WarmStart
	// reports how the eigensolve used the base spectrum ("accepted",
	// "seeded", "rejected", "cold" — see spectral.WarmInfo). Reach is
	// the perturbation's measured extent, and Stability compares the
	// delta partition against the base partition.
	BaseHash  string              `json:"baseHash,omitempty"`
	WarmStart string              `json:"warmStart,omitempty"`
	Reach     *delta.Reach        `json:"reach,omitempty"`
	Stability *spectral.Stability `json:"stability,omitempty"`
}

// Status is a JSON-ready snapshot of a job.
type Status struct {
	ID       string     `json:"id"`
	Kind     Kind       `json:"kind"`
	State    State      `json:"state"`
	Method   string     `json:"method,omitempty"`
	K        int        `json:"k,omitempty"`
	D        int        `json:"d,omitempty"`
	Hash     string     `json:"netlist,omitempty"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Stage latencies in seconds: time spent queued, obtaining the
	// eigendecomposition (0 on a cache hit), and in the downstream
	// solve.
	QueueSeconds    float64 `json:"queueSeconds"`
	SpectrumSeconds float64 `json:"spectrumSeconds"`
	SolveSeconds    float64 `json:"solveSeconds"`
	// BatchSeconds is the time this job waited in a spectrum batch
	// window before its batch fired (a subset of SpectrumSeconds);
	// BatchMembers is how many jobs shared that batch's decomposition.
	// Both are zero when batching is disabled.
	BatchSeconds float64 `json:"batchSeconds,omitempty"`
	BatchMembers int     `json:"batchMembers,omitempty"`
	// TimeoutSeconds echoes the request deadline (0 = none).
	TimeoutSeconds float64 `json:"timeoutSeconds,omitempty"`
	// ShedFromD is the originally requested d when overload control
	// degraded this job to a smaller decomposition.
	ShedFromD int `json:"shedFromD,omitempty"`
	// BaseHash identifies a KindDelta job's base netlist.
	BaseHash string `json:"baseHash,omitempty"`
	// Restored marks a job recovered from the journal after a restart.
	Restored bool    `json:"restored,omitempty"`
	Result   *Result `json:"result,omitempty"`
}

// Job is one tracked unit of work. All methods are safe for concurrent
// use.
type Job struct {
	id     string
	req    Request
	ctx    context.Context
	cancel func()

	// shedFromD is the d the client asked for before load shedding
	// degraded the request (0 = not shed). restored marks a job rebuilt
	// from the journal after a crash. enqueued is when the job last
	// entered the queue — it matches created for fresh submissions but
	// re-anchors at restart for replayed jobs, so MaxQueueWait never
	// charges queue wait a crash already destroyed. All three are set
	// before the job is published and immutable afterwards.
	shedFromD int
	restored  bool
	enqueued  time.Time

	mu                              sync.Mutex
	state                           State
	err                             error
	result                          *Result
	created                         time.Time
	started                         time.Time
	finished                        time.Time
	queueDur, spectrumDur, solveDur time.Duration
	batchDur                        time.Duration
	batchMembers                    int

	done chan struct{}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cooperative cancellation. It is a no-op after the job
// finished.
func (j *Job) Cancel() { j.cancel() }

// Result returns the finished job's result, or the error it failed
// with. Calling it before the job finished returns an error.
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case Done:
		return j.result, nil
	case Failed, Cancelled:
		return nil, j.err
	default:
		return nil, errors.New("jobs: job has not finished")
	}
}

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:              j.id,
		Kind:            j.req.Kind,
		State:           j.state,
		Hash:            j.req.Hash,
		Created:         j.created,
		QueueSeconds:    j.queueDur.Seconds(),
		SpectrumSeconds: j.spectrumDur.Seconds(),
		SolveSeconds:    j.solveDur.Seconds(),
		BatchSeconds:    j.batchDur.Seconds(),
		BatchMembers:    j.batchMembers,
		TimeoutSeconds:  j.req.Timeout.Seconds(),
		ShedFromD:       j.shedFromD,
		Restored:        j.restored,
		Result:          j.result,
	}
	if j.req.Kind == KindOrder {
		s.Method = "melo"
		s.D = j.req.D
	} else if j.req.Kind == KindDelta {
		o := j.req.Opts
		s.Method = o.Method.String()
		s.K = o.K
		s.D = o.D
		s.BaseHash = j.req.BaseHash
	} else {
		o := j.req.Opts
		s.Method = o.Method.String()
		s.K = o.K
		s.D = o.D
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// markStarted transitions pending → running and records the queue wait.
func (j *Job) markStarted(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = Running
	j.started = now
	j.queueDur = now.Sub(j.created)
}

// finish transitions to the terminal state for (result, err).
func (j *Job) finish(res *Result, err error, cancelled bool, now time.Time) State {
	j.mu.Lock()
	switch {
	case err == nil:
		j.state, j.result = Done, res
	case cancelled:
		j.state, j.err = Cancelled, err
	default:
		j.state, j.err = Failed, err
	}
	j.finished = now
	if j.started.IsZero() {
		// Never ran: cancelled while queued.
		j.started = now
		j.queueDur = now.Sub(j.created)
	}
	st := j.state
	j.mu.Unlock()
	close(j.done)
	return st
}

func (j *Job) recordSpectrum(d time.Duration) {
	j.mu.Lock()
	j.spectrumDur = d
	j.mu.Unlock()
}

func (j *Job) recordBatch(d time.Duration, members int) {
	if d < 0 {
		d = 0
	}
	j.mu.Lock()
	j.batchDur = d
	j.batchMembers = members
	j.mu.Unlock()
}

func (j *Job) recordSolve(d time.Duration) {
	j.mu.Lock()
	j.solveDur = d
	j.mu.Unlock()
}
