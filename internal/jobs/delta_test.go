package jobs

import (
	"context"
	"reflect"
	"testing"
	"time"

	spectral "repro"
	"repro/internal/delta"
)

// deltaBase returns a base netlist plus a structural ECO delta and the
// mutated netlist it produces.
func deltaBase(t *testing.T) (*spectral.Netlist, *delta.Delta, *spectral.Netlist) {
	t.Helper()
	base := testNetlist(t)
	d := &delta.Delta{
		RemoveNets: []string{base.NetNames[0]},
		AddNets:    []delta.NetChange{{Name: "eco-x", Modules: []int{1, base.NumModules() - 2}}},
	}
	mut, _, err := delta.Apply(base, d)
	if err != nil {
		t.Fatal(err)
	}
	return base, d, mut
}

// The delta path's core contract: the warm-started result is
// indistinguishable from partitioning the mutated netlist cold.
func TestDeltaJobMatchesColdPartition(t *testing.T) {
	defer leakCheck(t)()
	base, d, mut := deltaBase(t)
	opts := optsMELO(2)
	p := NewPool(Config{Workers: 2, QueueDepth: 8})
	p.Start()
	defer p.Shutdown(context.Background())

	// Partition the base first, as an ECO flow would: its spectrum is
	// then sitting in the LRU for the delta job to seed from.
	bj, err := p.Submit(Request{Netlist: base, Kind: KindPartition, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, bj)

	j, err := p.Submit(Request{Netlist: mut, Kind: KindDelta, Opts: opts, BaseNetlist: base, Delta: d})
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, j)

	cold, err := spectral.Partition(mut, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Assign, cold.Assign) {
		t.Errorf("delta partition differs from cold partition of the mutated netlist")
	}
	if res.NetCut != spectral.NetCut(mut, cold) {
		t.Errorf("reported cut %d != recomputed cold cut %d", res.NetCut, spectral.NetCut(mut, cold))
	}
	if res.BaseHash == "" {
		t.Error("result lacks the base hash")
	}
	switch res.WarmStart {
	case spectral.WarmOutcomeAccepted, spectral.WarmOutcomeSeeded,
		spectral.WarmOutcomeRejected, spectral.WarmOutcomeCold:
	default:
		t.Errorf("warmStart = %q, want a warm outcome", res.WarmStart)
	}
	if res.Reach == nil || res.Reach.Nets < 2 {
		t.Errorf("reach = %+v, want >= 2 touched nets (one removed, one added)", res.Reach)
	}
	if res.Stability == nil {
		t.Fatal("result lacks a stability report")
	}
	if res.Stability.NewCut != res.NetCut {
		t.Errorf("stability NewCut %d != job cut %d", res.Stability.NewCut, res.NetCut)
	}
	st := p.Stats()
	if st.WarmAccepted+st.WarmSeeded+st.WarmRejected+st.WarmCold != 1 {
		t.Errorf("warm counters %d/%d/%d/%d, want exactly one outcome",
			st.WarmAccepted, st.WarmSeeded, st.WarmRejected, st.WarmCold)
	}

	// Same delta again: the mutated spectrum is cached now, so no solve
	// and no new warm outcome.
	j2, err := p.Submit(Request{Netlist: mut, Kind: KindDelta, Opts: opts, BaseNetlist: base, Delta: d})
	if err != nil {
		t.Fatal(err)
	}
	res2 := waitDone(t, j2)
	if !res2.SpectrumCacheHit || res2.WarmStart != "cached" {
		t.Errorf("resubmitted delta: hit=%v warmStart=%q, want cached hit", res2.SpectrumCacheHit, res2.WarmStart)
	}
	if !reflect.DeepEqual(res2.Assign, res.Assign) {
		t.Error("resubmitted delta returned a different partition")
	}
}

// An area-only delta leaves the clique-model operator untouched: the
// base spectrum passes the residual check verbatim and the job runs
// with no eigensolve at all.
func TestDeltaJobAcceptsAreaOnlySeed(t *testing.T) {
	defer leakCheck(t)()
	base := testNetlist(t)
	d := &delta.Delta{SetAreas: []delta.AreaChange{{Module: 0, Area: 2.5}}}
	mut, _, err := delta.Apply(base, d)
	if err != nil {
		t.Fatal(err)
	}
	opts := optsMELO(2)
	p := NewPool(Config{Workers: 1, QueueDepth: 8})
	p.Start()
	defer p.Shutdown(context.Background())

	bj, err := p.Submit(Request{Netlist: base, Kind: KindPartition, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, bj)
	j, err := p.Submit(Request{Netlist: mut, Kind: KindDelta, Opts: opts, BaseNetlist: base, Delta: d})
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, j)
	if res.WarmStart != spectral.WarmOutcomeAccepted {
		t.Fatalf("warmStart = %q, want accepted (operator unchanged)", res.WarmStart)
	}
	if st := p.Stats(); st.WarmAccepted != 1 {
		t.Errorf("WarmAccepted = %d, want 1", st.WarmAccepted)
	}
	cold, err := spectral.Partition(mut, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Assign, cold.Assign) {
		t.Error("accepted-seed partition differs from cold partition")
	}
}

// DisableWarmStart must force cold solves while leaving the answer
// bit-identical.
func TestDeltaJobDisableWarmStart(t *testing.T) {
	defer leakCheck(t)()
	base, d, mut := deltaBase(t)
	opts := optsMELO(2)
	p := NewPool(Config{Workers: 1, QueueDepth: 8, DisableWarmStart: true})
	p.Start()
	defer p.Shutdown(context.Background())

	j, err := p.Submit(Request{Netlist: mut, Kind: KindDelta, Opts: opts, BaseNetlist: base, Delta: d})
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, j)
	if res.WarmStart != spectral.WarmOutcomeCold {
		t.Errorf("warmStart = %q with warm starts disabled, want cold", res.WarmStart)
	}
	if st := p.Stats(); st.WarmCold != 1 || st.WarmAccepted+st.WarmSeeded+st.WarmRejected != 0 {
		t.Errorf("warm counters %+v, want exactly one cold", st)
	}
	cold, err := spectral.Partition(mut, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Assign, cold.Assign) {
		t.Error("cold delta partition differs from facade cold partition")
	}
}

func TestDeltaSubmitValidation(t *testing.T) {
	defer leakCheck(t)()
	base, d, mut := deltaBase(t)
	p := NewPool(Config{Workers: 1, QueueDepth: 4})
	p.Start()
	defer p.Shutdown(context.Background())

	if _, err := p.Submit(Request{Netlist: mut, Kind: KindDelta, Opts: optsMELO(2)}); err == nil {
		t.Error("delta job without a base netlist accepted")
	}
	other, err := spectral.GenerateBenchmark("prim1", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(Request{Netlist: mut, Kind: KindDelta, Opts: optsMELO(2), BaseNetlist: other}); err == nil {
		t.Error("delta job with a module-count mismatch accepted")
	}
	if _, err := p.Submit(Request{Netlist: mut, Kind: KindDelta, Opts: spectral.Options{K: -3, Method: spectral.MELO}, BaseNetlist: base, Delta: d}); err == nil {
		t.Error("delta job with invalid options accepted")
	}
}

// Crash-safety: a delta job interrupted mid-flight is re-enqueued on
// replay with both netlist bodies recovered, and completes with the
// full delta result.
func TestDeltaJournalReplay(t *testing.T) {
	defer leakCheck(t)()
	base, d, mut := deltaBase(t)
	opts := optsMELO(2)
	dir := t.TempDir()
	jnl, _ := openJournal(t, dir)

	p1 := NewPool(Config{Workers: 1, QueueDepth: 8, Journal: jnl})
	p1.runFn = func(ctx context.Context, j *Job) (*Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	p1.Start()
	j, err := p1.Submit(Request{Netlist: mut, Kind: KindDelta, Opts: opts, BaseNetlist: base, Delta: d})
	if err != nil {
		t.Fatal(err)
	}
	for j.State() != Running {
		time.Sleep(time.Millisecond)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	_ = p1.Shutdown(expired)

	jnl2, rep := openJournal(t, dir)
	defer jnl2.Close()
	p2 := NewPool(Config{Workers: 1, QueueDepth: 8, Journal: jnl2})
	stats, nets, err := p2.Restore(rep)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reenqueued != 1 || stats.FailedOnReplay != 0 {
		t.Fatalf("restore stats %+v, want 1 re-enqueued", stats)
	}
	if len(nets) != 2 {
		t.Fatalf("restored %d netlists, want 2 (base + mutated)", len(nets))
	}
	p2.Start()
	defer p2.Shutdown(context.Background())
	rj, ok := p2.Job(j.ID())
	if !ok {
		t.Fatalf("job %s lost across restart", j.ID())
	}
	res := waitDone(t, rj)
	if res.Stability == nil || res.BaseHash == "" {
		t.Fatalf("replayed delta result incomplete: %+v", res)
	}
	cold, err := spectral.Partition(mut, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Assign, cold.Assign) {
		t.Error("replayed delta partition differs from cold partition")
	}
	if res.Reach == nil {
		t.Error("replayed delta result lacks reach (delta not journaled?)")
	}
}
