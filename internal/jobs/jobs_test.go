package jobs

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	spectral "repro"
)

// leakCheck snapshots the goroutine count and returns a func that fails
// the test if the count has not returned to the baseline. Tests in this
// package must not run in parallel.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
	}
}

func testNetlist(t *testing.T) *spectral.Netlist {
	t.Helper()
	h, err := spectral.GenerateBenchmark("prim1", 0.06)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func waitDone(t *testing.T, j *Job) *Result {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish (state %s)", j.ID(), j.State())
	}
	res, err := j.Result()
	if err != nil {
		t.Fatalf("job %s: %v", j.ID(), err)
	}
	return res
}

// A second request for the same netlist with a different method, K or d
// must hit the spectrum cache: one eigensolve serves them all.
func TestSpectrumReusedAcrossMethodsAndK(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 2, QueueDepth: 16})
	p.Start()
	defer p.Shutdown(context.Background())

	first, err := p.Submit(Request{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.MELO}})
	if err != nil {
		t.Fatal(err)
	}
	if res := waitDone(t, first); res.SpectrumCacheHit {
		t.Error("first job cannot be a cache hit")
	}
	if st := p.Cache().Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after first job: cache stats %+v, want exactly 1 miss", st)
	}

	// Different K, different method, and an ordering job: all reuse the
	// partitioning-specific decomposition computed above.
	reusers := []Request{
		{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 4, Method: spectral.MELO}},
		{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.SFC}},
		{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.SB}},
		{Netlist: h, Kind: KindOrder, D: 5},
	}
	for i, req := range reusers {
		j, err := p.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		res := waitDone(t, j)
		if !res.SpectrumCacheHit {
			t.Errorf("request %d: spectrum cache miss, want hit", i)
		}
	}
	st := p.Cache().Stats()
	if st.Misses != 1 {
		t.Errorf("eigensolve ran %d times across 5 jobs, want once", st.Misses)
	}
	if st.Hits != uint64(len(reusers)) {
		t.Errorf("cache hits = %d, want %d", st.Hits, len(reusers))
	}

	// KP uses the Frankle clique model: a genuinely different
	// decomposition, so a second (and only a second) eigensolve.
	kp, err := p.Submit(Request{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.KP}})
	if err != nil {
		t.Fatal(err)
	}
	if res := waitDone(t, kp); res.SpectrumCacheHit {
		t.Error("KP must not reuse the partitioning-specific spectrum")
	}
	if st := p.Cache().Stats(); st.Misses != 2 {
		t.Errorf("misses = %d after KP, want 2", st.Misses)
	}
}

func TestQueueBackpressure(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	p.runFn = func(ctx context.Context, j *Job) (*Result, error) {
		select {
		case <-release:
			return &Result{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	p.Start()
	defer p.Shutdown(context.Background())

	running, err := p.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker holds the first job, so the queue is empty.
	for running.State() != Running {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		if _, err := p.Submit(Request{Netlist: h}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if _, err := p.Submit(Request{Netlist: h}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit: err = %v, want ErrQueueFull", err)
	}
	st := p.Stats()
	if st.Rejected != 1 || st.QueueDepth != 2 {
		t.Errorf("stats = %+v, want 1 rejected, queue depth 2", st)
	}
	close(release)
}

// Shutdown with headroom must drain: queued jobs run to completion.
func TestShutdownDrains(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 1, QueueDepth: 8})
	p.Start()
	var submitted []*Job
	for i := 0; i < 3; i++ {
		j, err := p.Submit(Request{Netlist: h, Opts: spectral.Options{K: 2, Method: spectral.MELO}})
		if err != nil {
			t.Fatal(err)
		}
		submitted = append(submitted, j)
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, j := range submitted {
		if j.State() != Done {
			t.Errorf("job %d: state %s after drain, want done", i, j.State())
		}
	}
	if _, err := p.Submit(Request{Netlist: h}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("submit after shutdown: err = %v, want ErrShuttingDown", err)
	}
}

// Shutdown whose context expires must cancel in-flight and queued jobs
// instead of waiting forever — and still not leak the workers.
func TestShutdownCancelsOnDeadline(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 1, QueueDepth: 8})
	started := make(chan struct{}, 8)
	p.runFn = func(ctx context.Context, j *Job) (*Result, error) {
		started <- struct{}{}
		<-ctx.Done() // simulate a job that only stops via cancellation
		return nil, ctx.Err()
	}
	p.Start()
	inflight, err := p.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := p.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("shutdown err = %v, want DeadlineExceeded", err)
	}
	for i, j := range []*Job{inflight, queued} {
		if st := j.State(); st != Cancelled {
			t.Errorf("job %d: state %s, want cancelled", i, st)
		}
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 1, QueueDepth: 8})
	started := make(chan struct{}, 8)
	p.runFn = func(ctx context.Context, j *Job) (*Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	p.Start()
	defer p.Shutdown(context.Background())

	running, err := p.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := p.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !p.Cancel(queued.ID()) {
		t.Error("cancel queued returned false")
	}
	if !p.Cancel(running.ID()) {
		t.Error("cancel running returned false")
	}
	for _, j := range []*Job{running, queued} {
		<-j.Done()
		if j.State() != Cancelled {
			t.Errorf("job %s: state %s, want cancelled", j.ID(), j.State())
		}
		if _, err := j.Result(); !errors.Is(err, context.Canceled) {
			t.Errorf("job %s: result err %v, want context.Canceled", j.ID(), err)
		}
	}
	if p.Cancel(running.ID()) {
		t.Error("cancelling a finished job returned true")
	}
	if p.Cancel("job-999999") {
		t.Error("cancelling an unknown job returned true")
	}
}

func TestJobFailureIsAttributed(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 1, QueueDepth: 4})
	p.Start()
	defer p.Shutdown(context.Background())

	// SB is a bipartitioner: K=4 fails validation inside the pipeline.
	j, err := p.Submit(Request{Netlist: h, Opts: spectral.Options{K: 4, Method: spectral.SB}})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != Failed {
		t.Fatalf("state = %s, want failed", j.State())
	}
	var pe *spectral.PipelineError
	if _, err := j.Result(); !errors.As(err, &pe) {
		t.Errorf("result err = %v, want *spectral.PipelineError", err)
	}
	if st := j.Status(); st.Error == "" || st.State != Failed {
		t.Errorf("status = %+v, want error text and failed state", st)
	}
}

func TestStatsAndStatusSnapshot(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 2, QueueDepth: 4})
	p.Start()
	defer p.Shutdown(context.Background())

	j, err := p.Submit(Request{Netlist: h, Opts: spectral.Options{K: 3, Method: spectral.MELO, D: 6}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	st := j.Status()
	if st.State != Done || st.Method != "melo" || st.K != 3 || st.D != 6 {
		t.Errorf("status = %+v", st)
	}
	if st.Started == nil || st.Finished == nil || st.Result == nil {
		t.Errorf("status missing timestamps or result: %+v", st)
	}
	if st.Hash == "" {
		t.Error("status missing netlist hash")
	}
	ps := p.Stats()
	if ps.Done != 1 || ps.Submitted != 1 || ps.Workers != 2 || ps.QueueCapacity != 4 {
		t.Errorf("pool stats = %+v", ps)
	}
	if ps.Solve.Count != 1 || ps.QueueWait.Count != 1 {
		t.Errorf("stage stats = %+v, want counts of 1", ps)
	}
	if all := p.Jobs(); len(all) != 1 || all[0].ID != j.ID() {
		t.Errorf("Jobs() = %+v", all)
	}
}

// Finished jobs beyond MaxJobs are forgotten, oldest first; live jobs
// are never dropped.
func TestJobRetention(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 1, QueueDepth: 8, MaxJobs: 2})
	p.runFn = func(ctx context.Context, j *Job) (*Result, error) { return &Result{}, nil }
	p.Start()
	defer p.Shutdown(context.Background())

	var ids []string
	for i := 0; i < 4; i++ {
		j, err := p.Submit(Request{Netlist: h})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		ids = append(ids, j.ID())
	}
	if _, ok := p.Job(ids[0]); ok {
		t.Error("oldest finished job survived retention")
	}
	if _, ok := p.Job(ids[3]); !ok {
		t.Error("newest job was dropped")
	}
}

// The eigensolve is detached from the job that wins the spectrum
// cache's singleflight (see Pool.spectrum): cancelling the winner
// mid-flight must not starve a follower waiting on the same
// decomposition — whichever job ends up computing, the follower
// finishes Done.
func TestCancelledWinnerStillFeedsFollower(t *testing.T) {
	defer leakCheck(t)()
	h, err := spectral.GenerateBenchmark("industry2", 0.06)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(Config{Workers: 2, QueueDepth: 8})
	p.Start()
	defer p.Shutdown(context.Background())

	req := Request{
		Netlist: h,
		Kind:    KindPartition,
		Opts:    spectral.Options{K: 2, Method: spectral.MELO, D: 30},
	}
	winner, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the winner once it has been picked up (mid-eigensolve on
	// this netlist), or while still queued on a slow machine — in every
	// interleaving the follower must complete.
	deadline := time.Now().Add(30 * time.Second)
	for winner.State() == Pending && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	p.Cancel(winner.ID())

	select {
	case <-follower.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("follower starved after winner cancel (state %s)", follower.State())
	}
	if st := follower.Status(); st.State != Done {
		t.Errorf("follower finished %s (%s), want done", st.State, st.Error)
	}
	select {
	case <-winner.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("winner never reached a terminal state")
	}
	if st := winner.State(); st != Done && st != Cancelled {
		t.Errorf("winner finished %s, want done or cancelled", st)
	}
}
