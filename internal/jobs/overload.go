package jobs

import (
	"sort"
	"sync"
	"time"
)

// ShedPolicy selects what admission control does under sustained queue
// pressure (see shedder). The zero value is ShedNone.
type ShedPolicy string

const (
	// ShedNone admits every job until the queue is full (429 only at
	// capacity — the pre-overload-control behaviour).
	ShedNone ShedPolicy = "none"
	// ShedDegrade lowers the requested eigenvector count d of new jobs
	// while pressure is sustained: fewer eigenvectors is a cheaper valid
	// answer (the paper's d trade-off), so the daemon degrades quality
	// before it degrades availability. Jobs whose method takes no
	// spectrum are admitted unchanged.
	ShedDegrade ShedPolicy = "degrade"
	// ShedReject refuses new jobs (ErrQueueFull) while pressure is
	// sustained, before the queue is physically full.
	ShedReject ShedPolicy = "reject"
)

// ParseShedPolicy validates a -shed-policy flag value.
func ParseShedPolicy(s string) (ShedPolicy, bool) {
	switch ShedPolicy(s) {
	case "", ShedNone:
		return ShedNone, true
	case ShedDegrade:
		return ShedDegrade, true
	case ShedReject:
		return ShedReject, true
	}
	return ShedNone, false
}

// shedMinD is the floor admission-control degradation never goes
// below — the same floor as the resilience ladder's MinD default: a
// d=2 ordering is still a valid (paper-sanctioned) answer.
const shedMinD = 2

// shedder detects *sustained* queue pressure without reading a clock:
// it counts consecutive submissions that observed the queue at or above
// the high watermark. A single burst that a worker absorbs immediately
// does not trip it; pressure across `need` back-to-back submissions
// does. Hysteresis: once active, shedding stops only when a submission
// observes the queue at or below the low watermark.
type shedder struct {
	policy ShedPolicy
	hi, lo int // queue-depth watermarks
	need   int // consecutive high observations to activate

	mu       sync.Mutex
	streak   int
	active   bool
	degraded uint64 // jobs admitted with a lowered d
	rejected uint64 // jobs refused by ShedReject
	trips    uint64 // inactive -> active transitions
}

// newShedder sizes watermarks from the queue capacity: high = 3/4,
// low = 1/4 (min 1 apart).
func newShedder(policy ShedPolicy, queueCap int) *shedder {
	hi := queueCap * 3 / 4
	if hi < 1 {
		hi = 1
	}
	lo := queueCap / 4
	if lo >= hi {
		lo = hi - 1
	}
	return &shedder{policy: policy, hi: hi, lo: lo, need: 4}
}

// observe folds one submission-time queue depth into the pressure
// signal and reports whether shedding is active for this admission.
func (s *shedder) observe(depth int) bool {
	if s == nil || s.policy == ShedNone || s.policy == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case depth >= s.hi:
		s.streak++
		if !s.active && s.streak >= s.need {
			s.active = true
			s.trips++
		}
	case depth <= s.lo:
		s.streak = 0
		s.active = false
	default:
		// Between watermarks: the streak resets (pressure is not
		// consecutive) but an active shedder stays active (hysteresis).
		s.streak = 0
	}
	return s.active
}

func (s *shedder) noteDegraded() {
	s.mu.Lock()
	s.degraded++
	s.mu.Unlock()
}

func (s *shedder) noteRejected() {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

// ShedStats is a snapshot of the shedder for /metrics.
type ShedStats struct {
	Policy   ShedPolicy `json:"policy"`
	Active   bool       `json:"active"`
	Degraded uint64     `json:"degraded"`
	Rejected uint64     `json:"rejected"`
	Trips    uint64     `json:"trips"`
}

func (s *shedder) stats() ShedStats {
	if s == nil {
		return ShedStats{Policy: ShedNone}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShedStats{Policy: s.policy, Active: s.active, Degraded: s.degraded, Rejected: s.rejected, Trips: s.trips}
}

// degradeD halves a requested eigenvector count toward shedMinD.
// d == 0 means "the facade default" (10, the paper's main setting), so
// it degrades from there. Returns the new d and whether it changed.
func degradeD(d int) (int, bool) {
	eff := d
	if eff <= 0 {
		eff = 10
	}
	nd := eff / 2
	if nd < shedMinD {
		nd = shedMinD
	}
	if nd >= eff {
		return d, false
	}
	return nd, true
}

// latRing retains the run durations (spectrum + solve, excluding queue
// wait) of the most recent finished jobs, so admission control can
// quote a Retry-After grounded in what jobs currently cost.
type latRing struct {
	mu   sync.Mutex
	buf  [64]time.Duration
	n    int // filled slots
	next int // write cursor
}

func (r *latRing) add(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// p50 returns the median recent run duration (0 when no jobs finished
// yet).
func (r *latRing) p50() time.Duration {
	r.mu.Lock()
	vals := make([]time.Duration, r.n)
	copy(vals, r.buf[:r.n])
	r.mu.Unlock()
	if len(vals) == 0 {
		return 0
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals[len(vals)/2]
}

// Retry-After bounds: never tell a client to come back sooner than one
// second (sub-second retries just reheat the queue) or later than a
// minute (beyond that the estimate is noise).
const (
	minRetryAfter = time.Second
	maxRetryAfter = time.Minute
)

// RetryAfter estimates when a rejected submission is worth retrying:
// the queued work ahead of the client, in worker-widths, times the
// median recent job duration —
//
//	ceil((depth+1)/workers) × p50, clamped to [1s, 60s]
//
// With no latency history yet p50 falls back to 1s, reproducing the
// old hard-coded "Retry-After: 1" as the cold-start case.
func RetryAfter(depth, workers int, p50 time.Duration) time.Duration {
	if workers < 1 {
		workers = 1
	}
	if p50 <= 0 {
		p50 = time.Second
	}
	widths := (depth + workers) / workers // ceil((depth+1)/workers) for depth >= 0
	if widths < 1 {
		widths = 1
	}
	d := time.Duration(widths) * p50
	if d < minRetryAfter {
		return minRetryAfter
	}
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

// RetryAfter quotes the pool's current backoff hint from live queue
// depth and recent run latencies.
func (p *Pool) RetryAfter() time.Duration {
	return RetryAfter(len(p.queue), p.cfg.Workers, p.lat.p50())
}
