package jobs

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	spectral "repro"
	"repro/internal/journal"
	"repro/internal/speccache"
)

// openJournal opens (or reopens) a journal in dir and fails the test on
// error.
func openJournal(t *testing.T, dir string) (*journal.Journal, *journal.ReplayResult) {
	t.Helper()
	jnl, rep, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return jnl, rep
}

// The core crash-safety contract: a pool journaling to disk can be
// killed and rebuilt, with finished jobs served from their recorded
// results and unfinished jobs re-enqueued — none silently lost.
func TestJournalRestoreRoundTrip(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	dir := t.TempDir()
	jnl, _ := openJournal(t, dir)

	p1 := NewPool(Config{Workers: 1, QueueDepth: 8, Journal: jnl})
	want := &Result{Order: []int{2, 0, 1}, SpectrumCacheHit: false}
	release := make(chan struct{})
	p1.runFn = func(ctx context.Context, j *Job) (*Result, error) {
		select {
		case <-release:
			return want, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	p1.Start()

	finished, err := p1.Submit(Request{Netlist: h, Kind: KindOrder, D: 5})
	if err != nil {
		t.Fatal(err)
	}
	release <- struct{}{}
	waitDone(t, finished)

	running, err := p1.Submit(Request{Netlist: h, Kind: KindOrder, D: 5})
	if err != nil {
		t.Fatal(err)
	}
	for running.State() != Running {
		time.Sleep(time.Millisecond)
	}
	queued, err := p1.Submit(Request{Netlist: h, Kind: KindPartition, Opts: optsMELO(2)})
	if err != nil {
		t.Fatal(err)
	}

	// "Crash": the journal's file handle dies first (as it would on
	// SIGKILL), so nothing the dying pool writes afterwards lands.
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	_ = p1.Shutdown(expired)

	// Restart: replay the journal into a fresh pool.
	jnl2, rep := openJournal(t, dir)
	defer jnl2.Close()
	if rep.Stats.Records == 0 {
		t.Fatal("replay saw no records")
	}
	p2 := NewPool(Config{Workers: 1, QueueDepth: 8, Journal: jnl2})
	p2.runFn = func(ctx context.Context, j *Job) (*Result, error) { return want, nil }
	stats, nets, err := p2.Restore(rep)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecoveredTerminal != 1 || stats.Reenqueued != 2 || stats.FailedOnReplay != 0 {
		t.Fatalf("restore stats = %+v, want 1 recovered, 2 re-enqueued, 0 failed", stats)
	}
	if len(nets) != 1 {
		t.Fatalf("restored %d netlists, want 1", len(nets))
	}

	// The finished job's result survives byte-for-byte without re-running.
	j1, ok := p2.Job(finished.ID())
	if !ok {
		t.Fatalf("job %s lost across restart", finished.ID())
	}
	if j1.State() != Done {
		t.Fatalf("job %s: state %s after replay, want done", j1.ID(), j1.State())
	}
	res, err := j1.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Errorf("replayed result = %+v, want %+v", res, want)
	}
	if !j1.Status().Restored {
		t.Error("replayed job not marked restored")
	}

	// The interrupted jobs run again to completion.
	p2.Start()
	for _, id := range []string{running.ID(), queued.ID()} {
		j, ok := p2.Job(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		waitDone(t, j)
	}

	// IDs keep counting past the replayed maximum — no reuse.
	fresh, err := p2.Submit(Request{Netlist: h, Kind: KindOrder})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID() <= queued.ID() {
		t.Errorf("fresh job ID %s does not continue past replayed %s", fresh.ID(), queued.ID())
	}
	waitDone(t, fresh)
	if err := p2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func optsMELO(k int) spectral.Options { return spectral.Options{K: k, Method: spectral.MELO} }

// A job whose netlist record was lost (e.g. to a corrupt segment) must
// be failed with an explanatory error, never silently dropped.
func TestRestoreFailsJobWithLostNetlist(t *testing.T) {
	defer leakCheck(t)()
	dir := t.TempDir()
	jnl, _ := openJournal(t, dir)
	err := jnl.AppendDurable(journal.Record{
		Type: journal.TypeSubmit, ID: "job-000007", Hash: "sha256:missing",
		Spec: &journal.JobSpec{Kind: string(KindOrder), D: 5}, UnixNS: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	jnl2, rep := openJournal(t, dir)
	defer jnl2.Close()
	p := NewPool(Config{Workers: 1, QueueDepth: 8, Journal: jnl2})
	stats, _, err := p.Restore(rep)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FailedOnReplay != 1 || stats.Reenqueued != 0 {
		t.Fatalf("restore stats = %+v, want exactly 1 failed", stats)
	}
	j, ok := p.Job("job-000007")
	if !ok {
		t.Fatal("job with lost netlist was dropped")
	}
	if j.State() != Failed {
		t.Fatalf("state = %s, want failed", j.State())
	}
	if _, err := j.Result(); err == nil || !strings.Contains(err.Error(), "not recoverable") {
		t.Errorf("error = %v, want a 'not recoverable' explanation", err)
	}
	p.Start()
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// A cancel requested before the crash is honoured on replay instead of
// re-running work the client abandoned.
func TestRestoreHonoursPendingCancel(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	dir := t.TempDir()
	jnl, _ := openJournal(t, dir)

	p1 := NewPool(Config{Workers: 1, QueueDepth: 8, Journal: jnl})
	block := make(chan struct{})
	p1.runFn = func(ctx context.Context, j *Job) (*Result, error) {
		<-block
		return nil, ctx.Err()
	}
	p1.Start()
	hog, err := p1.Submit(Request{Netlist: h, Kind: KindOrder})
	if err != nil {
		t.Fatal(err)
	}
	for hog.State() != Running {
		time.Sleep(time.Millisecond)
	}
	victim, err := p1.Submit(Request{Netlist: h, Kind: KindOrder, D: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Cancel(victim.ID()) {
		t.Fatal("cancel returned false")
	}
	// Crash before the worker retires the cancelled job. Sync first so
	// the buffered cancel record reaches disk (a lost cancel record is
	// legal — it just re-runs the job — but this test pins the honoured
	// path).
	if err := jnl.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	close(block)
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	_ = p1.Shutdown(expired)

	jnl2, rep := openJournal(t, dir)
	defer jnl2.Close()
	p2 := NewPool(Config{Workers: 1, QueueDepth: 8, Journal: jnl2})
	stats, _, err := p2.Restore(rep)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CancelledOnReplay != 1 {
		t.Fatalf("restore stats = %+v, want 1 cancelled on replay", stats)
	}
	j, ok := p2.Job(victim.ID())
	if !ok {
		t.Fatal("cancelled job lost across restart")
	}
	if j.State() != Cancelled {
		t.Errorf("state = %s, want cancelled", j.State())
	}
	p2.Start()
	if err := p2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// Replay must not charge pre-crash queue wait against MaxQueueWait: a
// re-enqueued job without a request deadline (whose created time keeps
// its original submission timestamp) still gets a fresh queue-wait
// clock, so downtime longer than the bound does not fail every
// replayed job at pickup.
func TestRestoreReanchorsQueueWaitClock(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	dir := t.TempDir()
	jnl, _ := openJournal(t, dir)

	// Journal a no-deadline job as a daemon that crashed an hour ago
	// would have left it: netlist body plus a submit record, no finish.
	var buf bytes.Buffer
	if err := spectral.SaveNetlist(&buf, "", h); err != nil {
		t.Fatal(err)
	}
	hash := speccache.Fingerprint(h)
	old := time.Now().Add(-time.Hour)
	if err := jnl.AppendNetlist(hash, "", buf.Bytes(), old.UnixNano()); err != nil {
		t.Fatal(err)
	}
	err := jnl.AppendDurable(journal.Record{
		Type: journal.TypeSubmit, ID: "job-000001", Hash: hash,
		Spec: &journal.JobSpec{Kind: string(KindOrder), D: 3}, UnixNS: old.UnixNano(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	jnl2, rep := openJournal(t, dir)
	defer jnl2.Close()
	p := NewPool(Config{Workers: 1, QueueDepth: 8, Journal: jnl2, MaxQueueWait: time.Minute})
	p.runFn = func(ctx context.Context, j *Job) (*Result, error) { return &Result{}, nil }
	stats, _, err := p.Restore(rep)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reenqueued != 1 {
		t.Fatalf("restore stats = %+v, want 1 re-enqueued", stats)
	}
	p.Start()
	j, ok := p.Job("job-000001")
	if !ok {
		t.Fatal("replayed job lost")
	}
	waitDone(t, j)
	if st := j.State(); st != Done {
		t.Fatalf("replayed no-deadline job state = %s, want done (max-queue-wait must not charge downtime)", st)
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// deniableFile fails writes while armed, letting a test fail the
// journal at a precise moment.
type deniableFile struct {
	f    journal.File
	deny *atomic.Bool
}

func (f *deniableFile) Write(p []byte) (int, error) {
	if f.deny.Load() {
		return 0, errors.New("injected write error")
	}
	return f.f.Write(p)
}
func (f *deniableFile) Sync() error  { return f.f.Sync() }
func (f *deniableFile) Close() error { return f.f.Close() }

// A submission whose journal append fails must be retracted completely:
// the client gets an error, and the job the client was told failed is
// neither listed by the jobs API nor carried into compaction snapshots.
func TestSubmitJournalFailureRetractsJob(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	dir := t.TempDir()
	var deny atomic.Bool
	jnl, _, err := journal.Open(dir, journal.Options{
		OpenFile: func(path string) (journal.File, error) {
			f, err := journal.DefaultOpenFile(path)
			if err != nil {
				return nil, err
			}
			return &deniableFile{f: f, deny: &deny}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	p := NewPool(Config{Workers: 1, QueueDepth: 8, Journal: jnl})
	p.runFn = func(ctx context.Context, j *Job) (*Result, error) { return &Result{}, nil }
	p.Start()
	defer p.Shutdown(context.Background())

	deny.Store(true)
	if _, err := p.Submit(Request{Netlist: h, Kind: KindOrder}); !errors.Is(err, ErrJournal) {
		t.Fatalf("submit with failing journal: err = %v, want ErrJournal", err)
	}
	if jobs := p.Jobs(); len(jobs) != 0 {
		t.Fatalf("unacknowledged job still listed: %+v", jobs)
	}
	if st := p.Stats(); st.Submitted != 0 {
		t.Errorf("stats count a retracted submission: %+v", st)
	}

	// Recovery: compaction rewrites the journal from live state (which no
	// longer includes the retracted job) and clears the sticky failure.
	deny.Store(false)
	if err := p.CompactJournal(); err != nil {
		t.Fatalf("compaction recovery: %v", err)
	}
	j, err := p.Submit(Request{Netlist: h, Kind: KindOrder})
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	waitDone(t, j)
}

// Satellite: Shutdown must drain the queue even when its context is
// already expired on entry — queued jobs are cancelled immediately
// rather than orphaned behind workers stuck in long solves.
func TestShutdownWithExpiredContextDrainsQueue(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 1, QueueDepth: 8})
	started := make(chan struct{}, 1)
	p.runFn = func(ctx context.Context, j *Job) (*Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	p.Start()
	inflight, err := p.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var queued []*Job
	for i := 0; i < 5; i++ {
		j, err := p.Submit(Request{Netlist: h})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}

	expired, cancel := context.WithCancel(context.Background())
	cancel() // dead before Shutdown even starts
	begin := time.Now()
	if err := p.Shutdown(expired); !errors.Is(err, context.Canceled) {
		t.Errorf("shutdown err = %v, want context.Canceled", err)
	}
	if took := time.Since(begin); took > 5*time.Second {
		t.Errorf("shutdown with dead context took %v, want prompt return", took)
	}
	for i, j := range append(queued, inflight) {
		if st := j.State(); st != Cancelled {
			t.Errorf("job %d: state %s, want cancelled", i, st)
		}
	}
}

// Satellite: the Retry-After formula — queued work ahead of the client
// in worker-widths times the median recent job duration, clamped to
// [1s, 60s], with 1s as the cold-start fallback (the old hard-coded
// behaviour).
func TestRetryAfterFormula(t *testing.T) {
	cases := []struct {
		depth, workers int
		p50            time.Duration
		want           time.Duration
	}{
		{0, 4, 0, time.Second},                      // cold start: p50 fallback reproduces "Retry-After: 1"
		{0, 4, 3 * time.Second, 3 * time.Second},    // empty queue: one worker-width
		{7, 4, 2 * time.Second, 4 * time.Second},    // ceil(8/4)=2 widths
		{8, 4, 2 * time.Second, 6 * time.Second},    // ceil(9/4)=3 widths
		{0, 1, 100 * time.Millisecond, time.Second}, // clamped up to 1s
		{100, 2, 2 * time.Second, time.Minute},      // clamped down to 60s
		{3, 0, time.Second, 4 * time.Second},        // workers normalised to 1
	}
	for _, c := range cases {
		if got := RetryAfter(c.depth, c.workers, c.p50); got != c.want {
			t.Errorf("RetryAfter(%d, %d, %v) = %v, want %v", c.depth, c.workers, c.p50, got, c.want)
		}
	}
}

// A request deadline that expires fails the job (the daemon ran out of
// time) — it is not spelled as a client cancellation.
func TestDeadlineExceededFailsJob(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 1, QueueDepth: 8})
	p.runFn = func(ctx context.Context, j *Job) (*Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	p.Start()
	defer p.Shutdown(context.Background())

	j, err := p.Submit(Request{Netlist: h, Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != Failed {
		t.Fatalf("state = %s, want failed (deadline is not a cancellation)", j.State())
	}
	if _, err := j.Result(); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("result err = %v, want context.DeadlineExceeded", err)
	}
	if st := j.Status(); st.TimeoutSeconds == 0 {
		t.Error("status does not echo the request timeout")
	}
}

// The deadline covers queue wait: a job whose deadline expires while
// still queued fails at pickup without running.
func TestDeadlineCoversQueueWait(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 1, QueueDepth: 8})
	ran := make(chan string, 8)
	release := make(chan struct{})
	p.runFn = func(ctx context.Context, j *Job) (*Result, error) {
		ran <- j.ID()
		select {
		case <-release:
			return &Result{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	p.Start()
	defer p.Shutdown(context.Background())

	hog, err := p.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatal(err)
	}
	<-ran
	starved, err := p.Submit(Request{Netlist: h, Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the queued job's deadline lapse
	close(release)
	waitDone(t, hog)
	<-starved.Done()
	if starved.State() != Failed {
		t.Fatalf("state = %s, want failed", starved.State())
	}
	if _, err := starved.Result(); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("result err = %v, want context.DeadlineExceeded", err)
	}
	select {
	case id := <-ran:
		if id == starved.ID() {
			t.Error("deadline-expired job ran anyway")
		}
	default:
	}
}

// MaxQueueWait bounds how stale a job may be at pickup.
func TestMaxQueueWaitFailsStaleJob(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 1, QueueDepth: 8, MaxQueueWait: time.Nanosecond})
	p.runFn = func(ctx context.Context, j *Job) (*Result, error) { return &Result{}, nil }
	p.Start()
	defer p.Shutdown(context.Background())

	j, err := p.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != Failed {
		t.Fatalf("state = %s, want failed", j.State())
	}
	if _, err := j.Result(); err == nil || !strings.Contains(err.Error(), "max queue wait") {
		t.Errorf("error = %v, want a max-queue-wait explanation", err)
	}
}

// A panicking job fails in isolation: the worker survives and keeps
// serving, and the panic is counted.
func TestPanicIsolation(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 1, QueueDepth: 8})
	p.runFn = func(ctx context.Context, j *Job) (*Result, error) {
		if j.ID() == "job-000001" {
			panic("kernel exploded")
		}
		return &Result{}, nil
	}
	p.Start()
	defer p.Shutdown(context.Background())

	bad, err := p.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatal(err)
	}
	good, err := p.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatal(err)
	}
	<-bad.Done()
	if bad.State() != Failed {
		t.Fatalf("panicked job state = %s, want failed", bad.State())
	}
	if _, err := bad.Result(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("error = %v, want a panic attribution", err)
	}
	waitDone(t, good) // the same (sole) worker must still be alive
	if st := p.Stats(); st.Panics != 1 {
		t.Errorf("stats.Panics = %d, want 1", st.Panics)
	}
}

// shedTestPool builds a 1-worker pool whose worker parks on the first
// job, so queue depth is fully controlled by Submit calls.
func shedTestPool(t *testing.T, policy ShedPolicy) (*Pool, chan struct{}) {
	t.Helper()
	p := NewPool(Config{Workers: 1, QueueDepth: 16, ShedPolicy: policy})
	release := make(chan struct{})
	p.runFn = func(ctx context.Context, j *Job) (*Result, error) {
		select {
		case <-release:
			return &Result{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	p.Start()
	return p, release
}

// ShedDegrade admits jobs at a smaller d after sustained pressure, and
// recovers once the queue drains below the low watermark.
func TestShedDegradeUnderSustainedPressure(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p, release := shedTestPool(t, ShedDegrade)
	defer p.Shutdown(context.Background())

	submitOrder := func() *Job {
		t.Helper()
		j, err := p.Submit(Request{Netlist: h, Kind: KindOrder}) // d=0: the default 10
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	hog := submitOrder()
	for hog.State() != Running {
		time.Sleep(time.Millisecond)
	}
	// QueueDepth 16 → hi watermark 12. Fill to the watermark, then keep
	// submitting: the 4th consecutive high observation trips the shedder.
	for i := 0; i < 12; i++ {
		submitOrder()
	}
	var last *Job
	for i := 0; i < 4; i++ {
		last = submitOrder()
	}
	st := last.Status()
	if st.ShedFromD != 10 || st.D != 5 {
		t.Fatalf("job under pressure: d=%d shedFromD=%d, want d=5 shed from 10", st.D, st.ShedFromD)
	}
	if sh := p.Stats().Shed; !sh.Active || sh.Degraded != 1 || sh.Trips != 1 {
		t.Errorf("shed stats = %+v, want active with 1 degraded, 1 trip", sh)
	}

	// Drain below the low watermark (4) and confirm recovery. After the
	// close every job (including the recovery probe below) returns
	// instantly.
	close(release)
	for p.Stats().QueueDepth > 2 {
		time.Sleep(time.Millisecond)
	}
	calm, err := p.Submit(Request{Netlist: h, Kind: KindOrder})
	if err != nil {
		t.Fatal(err)
	}
	if st := calm.Status(); st.ShedFromD != 0 {
		t.Errorf("post-recovery job still shed (from d=%d)", st.ShedFromD)
	}
	if sh := p.Stats().Shed; sh.Active {
		t.Error("shedder still active after the queue drained")
	}
}

// ShedReject refuses new work under sustained pressure before the queue
// is physically full.
func TestShedRejectUnderSustainedPressure(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p, release := shedTestPool(t, ShedReject)
	defer func() {
		close(release)
		p.Shutdown(context.Background())
	}()

	hog, err := p.Submit(Request{Netlist: h, Kind: KindOrder})
	if err != nil {
		t.Fatal(err)
	}
	for hog.State() != Running {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 15; i++ {
		if _, err := p.Submit(Request{Netlist: h, Kind: KindOrder}); err != nil {
			// The shedder must trip on the 4th consecutive observation at
			// or above the high watermark (12): fills 0..11 observe depths
			// 0..11, so rejections may start at fill 15 the earliest.
			if i < 15 && errors.Is(err, ErrQueueFull) && p.Stats().QueueDepth < 16 {
				// Rejected before physical capacity: that is the point.
				if sh := p.Stats().Shed; sh.Rejected == 0 {
					t.Errorf("rejected without shed accounting: %+v", sh)
				}
				return
			}
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	// Queue now holds 15 (< capacity 16) and the shedder observed depths
	// 12, 13, 14 — three highs. The next submission is the fourth: it
	// must be shed-rejected even though one slot remains.
	if _, err := p.Submit(Request{Netlist: h, Kind: KindOrder}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit under sustained pressure: err = %v, want ErrQueueFull", err)
	}
	st := p.Stats()
	if st.QueueDepth >= st.QueueCapacity {
		t.Error("queue filled to capacity; shed-reject never fired early")
	}
	if st.Shed.Rejected != 1 || !st.Shed.Active {
		t.Errorf("shed stats = %+v, want 1 rejection while active", st.Shed)
	}
	if st.RetryAfterSeconds < 1 {
		t.Errorf("RetryAfterSeconds = %v, want >= 1", st.RetryAfterSeconds)
	}
}

// The journal log compacts once enough terminal records accumulate, and
// a restore from the compacted journal still sees every job.
func TestAutoCompactionPreservesState(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	dir := t.TempDir()
	jnl, _ := openJournal(t, dir)
	p := NewPool(Config{Workers: 1, QueueDepth: 8, Journal: jnl, CompactEvery: 4})
	p.runFn = func(ctx context.Context, j *Job) (*Result, error) {
		return &Result{NetCut: len(j.ID())}, nil
	}
	p.Start()
	var ids []string
	for i := 0; i < 10; i++ {
		j, err := p.Submit(Request{Netlist: h, Kind: KindOrder})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		ids = append(ids, j.ID())
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := jnl.Stats(); st.Compactions == 0 {
		t.Errorf("journal stats = %+v, want at least one compaction", st)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	jnl2, rep := openJournal(t, dir)
	defer jnl2.Close()
	p2 := NewPool(Config{Workers: 1, QueueDepth: 8, Journal: jnl2})
	stats, _, err := p2.Restore(rep)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecoveredTerminal != len(ids) || stats.Reenqueued != 0 {
		t.Fatalf("restore stats = %+v, want all %d jobs terminal", stats, len(ids))
	}
	for _, id := range ids {
		j, ok := p2.Job(id)
		if !ok {
			t.Fatalf("job %s lost by compaction", id)
		}
		if res, err := j.Result(); err != nil || res.NetCut != len(id) {
			t.Errorf("job %s: result %+v err %v after compaction", id, res, err)
		}
	}
	p2.Start()
	if err := p2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
