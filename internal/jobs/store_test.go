package jobs

import (
	"context"
	"testing"

	spectral "repro"
	"repro/internal/specstore"
)

func openDisk(t *testing.T, dir string) *specstore.Disk {
	t.Helper()
	st, err := specstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// A pool restarted against a populated disk store must serve every
// spectrum from disk: zero eigensolves, bit-identical answers. This is
// the "warm restart with zero recomputation" guarantee end to end.
func TestWarmRestartZeroRecompute(t *testing.T) {
	defer leakCheck(t)()
	dir := t.TempDir()
	h := testNetlist(t)
	reqs := equivalenceRequests(h)

	st1 := openDisk(t, dir)
	p1 := NewPool(Config{Workers: 1, QueueDepth: 16, Store: st1})
	p1.Start()
	want := runAll(t, p1, reqs)
	cold := p1.Stats()
	if cold.Computed == 0 {
		t.Fatal("cold pool computed nothing; test proves nothing")
	}
	if err := p1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openDisk(t, dir)
	defer st2.Close()
	if st2.Len() == 0 {
		t.Fatal("store is empty after reboot; write-through persist did not happen")
	}
	p2 := NewPool(Config{Workers: 1, QueueDepth: 16, Store: st2})
	p2.Start()
	defer p2.Shutdown(context.Background())
	got := runAll(t, p2, reqs)
	assertSameResults(t, want, got)

	warm := p2.Stats()
	if warm.Computed != 0 {
		t.Errorf("warm pool solved %d eigendecompositions, want 0", warm.Computed)
	}
	if warm.StoreHits == 0 {
		t.Error("warm pool never hit the persistent store")
	}
}

// When the LRU bound forces an eviction, the evicted decomposition
// spills to the persistent store and is repopulated from there on the
// next request — no recompute.
func TestEvictionSpillsToStoreAndRepopulates(t *testing.T) {
	defer leakCheck(t)()
	st := openDisk(t, t.TempDir())
	defer st.Close()
	// Cache of one entry: the second netlist's decomposition evicts the
	// first.
	p := NewPool(Config{Workers: 1, QueueDepth: 8, CacheEntries: 1, Store: st})
	p.Start()
	defer p.Shutdown(context.Background())

	hA := testNetlist(t)
	hB, err := spectral.GenerateBenchmark("prim1", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	req := func(h *spectral.Netlist) Request {
		return Request{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.MELO}}
	}
	jA, err := p.Submit(req(hA))
	if err != nil {
		t.Fatal(err)
	}
	want := waitDone(t, jA)
	jB, err := p.Submit(req(hB))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jB)
	if ev := p.Cache().Stats().Evictions; ev == 0 {
		t.Fatal("no eviction; cache bound not exercised")
	}

	computed := p.Stats().Computed
	jA2, err := p.Submit(req(hA))
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, jA2)
	st2 := p.Stats()
	if st2.Computed != computed {
		t.Errorf("re-request recomputed (computed %d -> %d), want store repopulation", computed, st2.Computed)
	}
	if st2.StoreHits == 0 {
		t.Error("store hits = 0, want the evicted spectrum served from disk")
	}
	assertSameResults(t, []*Result{want}, []*Result{got})
}
