package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	spectral "repro"
)

// equivalenceRequests is the method/kind matrix the batched≡unbatched
// guarantee is checked against: every clique model, several K values,
// and an ordering job.
func equivalenceRequests(h *spectral.Netlist) []Request {
	return []Request{
		{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.MELO}},
		{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 4, Method: spectral.MELO}},
		{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.SFC}},
		{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.SB}},
		{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.KP}},
		{Netlist: h, Kind: KindOrder, D: 5},
	}
}

func runAll(t *testing.T, p *Pool, reqs []Request) []*Result {
	t.Helper()
	jobsOut := make([]*Job, len(reqs))
	for i, req := range reqs {
		j, err := p.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		jobsOut[i] = j
	}
	results := make([]*Result, len(reqs))
	for i, j := range jobsOut {
		results[i] = waitDone(t, j)
	}
	return results
}

func assertSameResults(t *testing.T, want, got []*Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("result count %d != %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.K != g.K || w.NetCut != g.NetCut || w.ScaledCost != g.ScaledCost {
			t.Errorf("request %d: cut (%d, %g, k=%d) != (%d, %g, k=%d)",
				i, g.NetCut, g.ScaledCost, g.K, w.NetCut, w.ScaledCost, w.K)
		}
		if len(w.Assign) != len(g.Assign) {
			t.Fatalf("request %d: assign length differs", i)
		}
		for m := range w.Assign {
			if w.Assign[m] != g.Assign[m] {
				t.Fatalf("request %d: module %d assigned %d batched, %d unbatched", i, m, g.Assign[m], w.Assign[m])
			}
		}
		if len(w.Order) != len(g.Order) {
			t.Fatalf("request %d: order length differs", i)
		}
		for m := range w.Order {
			if w.Order[m] != g.Order[m] {
				t.Fatalf("request %d: order[%d] = %d batched, %d unbatched", i, m, g.Order[m], w.Order[m])
			}
		}
	}
}

// Batching must be invisible in the answers: every method and kind
// produces bit-identical partitions/orderings whether its spectrum came
// from a coalesced batch fetch (sized to the batch's largest request)
// or a dedicated unbatched one.
func TestBatchedEqualsUnbatched(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	reqs := equivalenceRequests(h)

	ref := NewPool(Config{Workers: 1, QueueDepth: 16})
	ref.Start()
	want := runAll(t, ref, reqs)
	if err := ref.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Enough workers that every job reaches the batcher inside the
	// window; the deadline trigger then fires one fetch per clique model.
	batched := NewPool(Config{Workers: len(reqs), QueueDepth: 16, BatchWindow: 500 * time.Millisecond})
	batched.Start()
	defer batched.Shutdown(context.Background())
	got := runAll(t, batched, reqs)
	assertSameResults(t, want, got)

	st := batched.Stats()
	if st.BatchedJobs != uint64(len(reqs)) {
		t.Errorf("batched jobs = %d, want %d (every job routes through the batcher)", st.BatchedJobs, len(reqs))
	}
	if st.Batches == 0 {
		t.Error("no batches fired")
	}
	// All partitioning-specific jobs coalesced into one decomposition
	// and KP's Frankle model into a second: exactly two eigensolves.
	if st.Computed != 2 {
		t.Errorf("computed %d decompositions, want 2 (one per clique model)", st.Computed)
	}
}

// A batch reaching BatchMax fires immediately — well before a long
// window would expire — and reports its membership on job status.
func TestBatchSizeTrigger(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 2, QueueDepth: 8, BatchWindow: time.Minute, BatchMax: 2})
	p.Start()
	defer p.Shutdown(context.Background())

	req := Request{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.MELO}}
	j1, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := p.Submit(Request{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 4, Method: spectral.MELO}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		<-j1.Done()
		<-j2.Done()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("size trigger did not fire; jobs stuck waiting for a one-minute window")
	}
	for _, j := range []*Job{j1, j2} {
		if _, err := j.Result(); err != nil {
			t.Fatal(err)
		}
		if st := j.Status(); st.BatchMembers != 2 {
			t.Errorf("job %s batch members = %d, want 2", j.ID(), st.BatchMembers)
		}
	}
	st := p.Stats()
	if st.Batches != 1 || st.BatchedJobs != 2 {
		t.Errorf("batches = %d, batched jobs = %d; want 1 and 2", st.Batches, st.BatchedJobs)
	}
	if st.Computed != 1 {
		t.Errorf("computed = %d, want 1 shared eigensolve", st.Computed)
	}
}

// A lone job must not wait forever: the window deadline fires a batch
// of one, and the job's status records the wait.
func TestBatchDeadlineTrigger(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 1, QueueDepth: 4, BatchWindow: 50 * time.Millisecond})
	p.Start()
	defer p.Shutdown(context.Background())

	j, err := p.Submit(Request{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.MELO}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	st := j.Status()
	if st.BatchMembers != 1 {
		t.Errorf("batch members = %d, want 1", st.BatchMembers)
	}
	if st.BatchSeconds < 0.02 {
		t.Errorf("batch wait %.3fs, want >= the ~50ms window", st.BatchSeconds)
	}
	if ps := p.Stats(); ps.Batches != 1 {
		t.Errorf("batches = %d, want 1 (deadline trigger)", ps.Batches)
	}
}

// A member cancelled mid-window abandons its slot without wedging the
// batch: the survivors still get their decomposition, and the
// cancelled job reports context.Canceled.
func TestBatchCancelledMemberDoesNotBlockOthers(t *testing.T) {
	defer leakCheck(t)()
	h := testNetlist(t)
	p := NewPool(Config{Workers: 3, QueueDepth: 8, BatchWindow: time.Minute, BatchMax: 3})
	p.Start()
	defer p.Shutdown(context.Background())

	req := Request{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.MELO}}
	j1, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Let both reach the batcher, then cancel one member mid-window.
	waitForMembers(t, p, 2)
	if !p.Cancel(victim.ID()) {
		t.Fatal("cancel returned false")
	}
	<-victim.Done()
	if _, err := victim.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("victim result err = %v, want context.Canceled", err)
	}

	// The third member fills the batch (the abandoned slot still
	// counts) and fires it; the survivors complete.
	j3, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	waitDone(t, j3)
	if st := p.Stats(); st.Batches != 1 {
		t.Errorf("batches = %d, want 1", st.Batches)
	}
}

// waitForMembers polls until the batcher holds n waiting members.
func waitForMembers(t *testing.T, p *Pool, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		p.batcher.mu.Lock()
		total := 0
		for _, sb := range p.batcher.pending {
			total += len(sb.members)
		}
		p.batcher.mu.Unlock()
		if total >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("batcher never reached %d members", n)
}

// Jobs over different netlists or clique models must not coalesce:
// each (fingerprint, model) pair gets its own batch and eigensolve.
func TestBatchIncompatibleJobsDoNotCoalesce(t *testing.T) {
	defer leakCheck(t)()
	hA := testNetlist(t)
	hB, err := spectral.GenerateBenchmark("prim1", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(Config{Workers: 4, QueueDepth: 8, BatchWindow: 100 * time.Millisecond})
	p.Start()
	defer p.Shutdown(context.Background())

	reqs := []Request{
		{Netlist: hA, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.MELO}},
		{Netlist: hA, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.KP}},
		{Netlist: hB, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.MELO}},
		{Netlist: hB, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.KP}},
	}
	runAll(t, p, reqs)
	st := p.Stats()
	if st.Batches != 4 {
		t.Errorf("batches = %d, want 4 (no cross-key coalescing)", st.Batches)
	}
	if st.Computed != 4 {
		t.Errorf("computed = %d, want 4 distinct eigensolves", st.Computed)
	}
}
