package jobs

// This file is the pool's crash-safety glue: translating job lifecycle
// events into journal records, replaying a journal back into live pool
// state after a restart, and compacting the log once the history it
// holds is dominated by finished work.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	spectral "repro"
	"repro/internal/delta"
	"repro/internal/journal"
	"repro/internal/speccache"
)

// ErrJournal wraps journal append failures surfaced from Submit: the
// job was NOT durably accepted and the caller must not acknowledge it.
var ErrJournal = errors.New("jobs: journal append failed")

// specOf serializes a request for the journal.
func specOf(req Request, shedFromD int) *journal.JobSpec {
	s := &journal.JobSpec{
		Kind:      string(req.Kind),
		TimeoutNS: int64(req.Timeout),
		ShedFromD: shedFromD,
	}
	if req.Kind == KindOrder {
		s.D = req.D
		s.Scheme = req.Scheme
	} else {
		o := req.Opts
		s.Method = o.Method.String()
		s.K = o.K
		s.D = o.D
		s.Scheme = o.Scheme
		s.MinFrac = o.MinFrac
		s.Refine = o.Refine
		s.Parallelism = o.Parallelism
		s.CoarsenThreshold = o.CoarsenThreshold
		s.MaxLevels = o.MaxLevels
		s.RefinePasses = o.RefinePasses
	}
	if req.Kind == KindDelta {
		s.BaseHash = req.BaseHash
		if req.Delta != nil {
			if b, err := json.Marshal(req.Delta); err == nil {
				s.Delta = b
			}
		}
	}
	return s
}

// requestOf rebuilds a Request from a replayed spec. The netlist is
// attached by the caller.
func requestOf(spec *journal.JobSpec, hash string) (Request, error) {
	req := Request{Hash: hash, Kind: Kind(spec.Kind), Timeout: time.Duration(spec.TimeoutNS)}
	switch req.Kind {
	case KindOrder:
		req.D = spec.D
		req.Scheme = spec.Scheme
	case KindPartition, KindDelta:
		method, err := spectral.ParseMethod(spec.Method)
		if err != nil {
			return Request{}, err
		}
		req.Opts = spectral.Options{
			Method:           method,
			K:                spec.K,
			D:                spec.D,
			Scheme:           spec.Scheme,
			MinFrac:          spec.MinFrac,
			Refine:           spec.Refine,
			Parallelism:      spec.Parallelism,
			CoarsenThreshold: spec.CoarsenThreshold,
			MaxLevels:        spec.MaxLevels,
			RefinePasses:     spec.RefinePasses,
		}
		if req.Kind == KindDelta {
			req.BaseHash = spec.BaseHash
			if len(spec.Delta) > 0 {
				var d delta.Delta
				if err := json.Unmarshal(spec.Delta, &d); err != nil {
					return Request{}, fmt.Errorf("jobs: replayed delta spec: %w", err)
				}
				req.Delta = &d
			}
		}
	default:
		return Request{}, fmt.Errorf("jobs: replayed spec has unknown kind %q", spec.Kind)
	}
	return req, nil
}

// appendJournal writes a buffered (non-durable) record; failures are
// counted and swallowed — losing a start or hint record only costs a
// deterministic re-run after the next crash.
func (p *Pool) appendJournal(rec journal.Record) {
	if p.jnl == nil {
		return
	}
	if err := p.jnl.Append(rec); err != nil {
		p.noteJournalError()
	}
}

func (p *Pool) noteJournalError() {
	p.mu.Lock()
	p.journalErrors++
	p.mu.Unlock()
	if p.tracer != nil {
		p.tracer.Add("journal.errors", 1)
	}
}

// journalSubmit durably records an accepted job (and, first, its
// netlist body so replay can rebuild the request). A failure here means
// the job must not be acknowledged to the client.
func (p *Pool) journalSubmit(j *Job) error {
	if p.jnl == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := spectral.SaveNetlist(&buf, "", j.req.Netlist); err != nil {
		return fmt.Errorf("%w: serialize netlist: %v", ErrJournal, err)
	}
	if err := p.jnl.AppendNetlist(j.req.Hash, "", buf.Bytes(), j.created.UnixNano()); err != nil {
		p.noteJournalError()
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	if j.req.Kind == KindDelta && j.req.BaseNetlist != nil {
		// The base body must survive too: replay re-partitions the base
		// for the stability report, and can rebuild the mutated netlist
		// from base+delta if the mutated record is damaged.
		var bbuf bytes.Buffer
		if err := spectral.SaveNetlist(&bbuf, "", j.req.BaseNetlist); err != nil {
			return fmt.Errorf("%w: serialize base netlist: %v", ErrJournal, err)
		}
		if err := p.jnl.AppendNetlist(j.req.BaseHash, "", bbuf.Bytes(), j.created.UnixNano()); err != nil {
			p.noteJournalError()
			return fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	if err := p.jnl.AppendDurable(journal.Record{
		Type:   journal.TypeSubmit,
		ID:     j.id,
		Hash:   j.req.Hash,
		Spec:   specOf(j.req, j.shedFromD),
		UnixNS: j.created.UnixNano(),
	}); err != nil {
		p.noteJournalError()
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	return nil
}

// finishRecord builds the journal record for a terminal transition.
func finishRecord(id string, st State, res *Result, err error, unixNS int64) journal.Record {
	rec := journal.Record{Type: journal.TypeFinish, ID: id, State: string(st), UnixNS: unixNS}
	if err != nil {
		rec.Error = err.Error()
	}
	if res != nil {
		if b, merr := json.Marshal(res); merr == nil {
			rec.Result = b
		}
	}
	return rec
}

// journalFinish durably records a terminal transition: a finished job's
// result is part of what a restarted daemon must still serve.
func (p *Pool) journalFinish(j *Job, st State, res *Result, err error) {
	if p.jnl == nil {
		return
	}
	if aerr := p.jnl.AppendDurable(finishRecord(j.id, st, res, err, time.Now().UnixNano())); aerr != nil {
		p.noteJournalError()
		return
	}
	p.maybeCompact()
}

// RestoredNetlist is a netlist recovered from the journal, keyed by
// content hash in Restore's return value so the HTTP layer can re-adopt
// it into its store.
type RestoredNetlist struct {
	Name    string
	Netlist *spectral.Netlist
}

// RestoreStats summarizes what Restore did with the replayed journal.
type RestoreStats struct {
	// Reenqueued jobs were queued or running at crash time and run
	// again from scratch.
	Reenqueued int `json:"reenqueued"`
	// RecoveredTerminal jobs had durable finish records; their results
	// are served without recomputation.
	RecoveredTerminal int `json:"recoveredTerminal"`
	// CancelledOnReplay jobs had a cancel request but no terminal
	// record; they are restored directly to cancelled.
	CancelledOnReplay int `json:"cancelledOnReplay"`
	// FailedOnReplay jobs could not be re-enqueued or served (e.g.
	// their netlist or result record was lost to corruption); they are
	// failed with an explanatory reason rather than silently dropped.
	FailedOnReplay int `json:"failedOnReplay"`
	// Netlists recovered from the journal.
	Netlists int `json:"netlists"`
	// SpectrumHints handed to the cache prewarmer.
	SpectrumHints int                 `json:"spectrumHints"`
	Replay        journal.ReplayStats `json:"replay"`
}

// Restore rebuilds pool state from a journal replay. Call after NewPool
// (and SetTracer) but before Start and before any Submit:
//
//   - terminal jobs are restored with their recorded results and served
//     from memory exactly like jobs that finished in this process;
//   - jobs that were queued or running at crash time are re-enqueued
//     (the queue grows past QueueDepth if the backlog demands it) with
//     their deadline, if any, and their MaxQueueWait clock re-anchored
//     at restart — downtime is not charged against either budget;
//   - jobs whose netlist or result cannot be recovered are failed with
//     an explanatory error — never silently dropped;
//   - spectrum hints prewarm the cache in the background once Start
//     runs.
//
// It returns the recovered netlists so the serving layer can re-adopt
// them. Restoring a journal-less pool is a no-op.
func (p *Pool) Restore(rep *journal.ReplayResult) (RestoreStats, map[string]RestoredNetlist, error) {
	stats := RestoreStats{Replay: rep.Stats}
	nets := make(map[string]RestoredNetlist, len(rep.Netlists))
	for _, nr := range rep.Netlists {
		name, h, err := spectral.LoadNetlist(bytes.NewReader(nr.Body))
		if err != nil || spectral.ValidateNetlist(h) != nil {
			stats.Replay.CorruptRecords++
			continue
		}
		if name == "" {
			name = nr.Name
		}
		// The journal recorded this netlist's fingerprint when it was
		// first uploaded (and the record's CRC protected it since); seed
		// the memo so re-adoption and re-enqueued submits don't pay a
		// fresh O(pins) canonicalization per netlist on every restart.
		h.SetCanonicalHash(nr.Hash)
		nets[nr.Hash] = RestoredNetlist{Name: name, Netlist: h}
	}
	stats.Netlists = len(nets)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return stats, nets, ErrShuttingDown
	}

	now := time.Now()
	var backlog []*Job
	// Terminal states decided during replay are journaled only after
	// p.mu is released: a compaction holds the journal's append gate
	// while it snapshots pool state under p.mu, so appending while
	// holding p.mu could deadlock against it.
	var outcomes []journal.Record
	for _, jr := range rep.Jobs {
		if jr.ID == "" {
			continue
		}
		if _, dup := p.jobs[jr.ID]; dup {
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(jr.ID, "job-%d", &seq); err == nil && seq > p.seq {
			p.seq = seq
		}
		j := &Job{
			id:       jr.ID,
			state:    Pending,
			created:  now,
			restored: true,
			cancel:   func() {}, // replaced with a real cancel if re-enqueued
			done:     make(chan struct{}),
		}
		if jr.SubmittedNS > 0 {
			j.created = time.Unix(0, jr.SubmittedNS)
		}
		specErr := errors.New("jobs: spec not recovered from journal replay")
		if jr.Spec != nil {
			j.shedFromD = jr.Spec.ShedFromD
			var err error
			if j.req, err = requestOf(jr.Spec, jr.Hash); err != nil {
				specErr = err
				j.req = Request{Hash: jr.Hash, Kind: KindPartition}
			} else {
				specErr = nil
			}
		} else {
			j.req = Request{Hash: jr.Hash, Kind: KindPartition}
		}
		rn, haveNet := nets[jr.Hash]
		if haveNet {
			j.req.Netlist = rn.Netlist
		}
		if j.req.Kind == KindDelta && specErr == nil {
			if bn, ok := nets[j.req.BaseHash]; ok {
				j.req.BaseNetlist = bn.Netlist
				if !haveNet && j.req.Delta != nil {
					// The mutated body was lost but base+delta survived:
					// re-apply the delta (deterministic) to rebuild it.
					if mut, _, err := delta.Apply(bn.Netlist, j.req.Delta); err == nil {
						if h := speccache.Fingerprint(mut); h == jr.Hash {
							j.req.Netlist = mut
							haveNet = true
						}
					}
				}
			} else {
				specErr = fmt.Errorf("jobs: base netlist %s lost in journal replay", j.req.BaseHash)
			}
		}

		failReplay := func(reason error) {
			j.state = Failed
			j.err = reason
			j.started = j.created
			j.finished = now
			close(j.done)
			stats.FailedOnReplay++
			outcomes = append(outcomes, finishRecord(j.id, Failed, nil, reason, now.UnixNano()))
		}

		switch {
		case jr.State == journal.StateDone:
			var res *Result
			if len(jr.Result) > 0 {
				var r Result
				if err := json.Unmarshal(jr.Result, &r); err == nil {
					res = &r
				}
			}
			if res == nil {
				// A done record whose result payload was lost: re-run if we
				// can, fail loudly if we cannot — never serve an empty result.
				if haveNet && specErr == nil {
					backlog = append(backlog, j)
					stats.Reenqueued++
					break
				}
				failReplay(errors.New("jobs: result lost in journal replay"))
				break
			}
			j.state = Done
			j.result = res
			j.started = j.created
			j.finished = finishedTime(jr.FinishedNS, now)
			close(j.done)
			stats.RecoveredTerminal++

		case jr.Terminal():
			j.state = State(jr.State)
			j.started = j.created
			j.finished = finishedTime(jr.FinishedNS, now)
			if jr.Error != "" {
				j.err = errors.New(jr.Error)
			} else if j.state == Cancelled {
				j.err = context.Canceled
			} else {
				j.err = errors.New("jobs: failed before restart (journal replay)")
			}
			close(j.done)
			stats.RecoveredTerminal++

		case jr.CancelRequested:
			// Cancelled while queued or running, crash before the worker
			// recorded the terminal state: honour the cancellation instead
			// of re-running.
			j.state = Cancelled
			j.err = context.Canceled
			j.started = j.created
			j.finished = now
			close(j.done)
			stats.CancelledOnReplay++
			outcomes = append(outcomes, finishRecord(j.id, Cancelled, nil, j.err, now.UnixNano()))

		default:
			// Queued or running at crash time: run it (again). The pipeline
			// is deterministic, so a re-run is byte-identical to the run
			// the crash interrupted.
			if !haveNet {
				failReplay(fmt.Errorf("jobs: not recoverable from journal replay (netlist %s lost)", jr.Hash))
				break
			}
			if specErr != nil {
				failReplay(fmt.Errorf("jobs: not recoverable from journal replay: %w", specErr))
				break
			}
			backlog = append(backlog, j)
			stats.Reenqueued++
		}
		p.jobs[j.id] = j
		p.order = append(p.order, j.id)
	}

	// Grow the queue if the replayed backlog would not fit alongside
	// fresh submissions.
	if need := len(p.queue) + len(backlog); need > cap(p.queue) {
		grown := make(chan *Job, need+p.cfg.QueueDepth)
	drain:
		for {
			select {
			case q := <-p.queue:
				grown <- q
			default:
				break drain
			}
		}
		p.queue = grown
	}
	for _, j := range backlog {
		// Deadlines — and the MaxQueueWait clock, for every re-enqueued
		// job — re-anchor at restart: the queue wait the crash destroyed
		// is not charged against the client's budget.
		j.enqueued = now
		if j.req.Timeout > 0 {
			j.created = now
		}
		j.ctx, j.cancel = p.jobContext(j.req)
		p.queue <- j
		p.submitted++
	}

	stats.SpectrumHints = len(rep.Hints)
	p.restored = &stats
	p.mu.Unlock()

	// Buffered, not durable: each outcome is deterministically
	// re-derivable from the same journal, so durability can wait for the
	// next sync.
	if p.jnl != nil {
		for _, rec := range outcomes {
			if err := p.jnl.Append(rec); err != nil {
				p.noteJournalError()
			}
		}
	}
	if p.tracer != nil {
		p.tracer.Add("journal.replay.reenqueued", int64(stats.Reenqueued))
		p.tracer.Add("journal.replay.recovered-terminal", int64(stats.RecoveredTerminal))
		p.tracer.Add("journal.replay.cancelled", int64(stats.CancelledOnReplay))
		p.tracer.Add("journal.replay.failed", int64(stats.FailedOnReplay))
		p.tracer.Add("journal.replay.corrupt-records", int64(stats.Replay.CorruptRecords))
		p.tracer.Add("journal.replay.truncated-bytes", stats.Replay.TruncatedBytes)
	}

	// Warm the spectrum cache from the replayed hints in the background:
	// a d-sweep that was warm before the crash should be warm after it.
	// Re-enqueued jobs needing the same decomposition singleflight-join
	// the prewarm compute instead of racing it.
	if len(rep.Hints) > 0 {
		hints := append([]journal.SpectrumHint(nil), rep.Hints...)
		if len(hints) > p.cfg.CacheEntries {
			hints = hints[len(hints)-p.cfg.CacheEntries:]
		}
		go p.prewarm(hints, nets)
	}
	return stats, nets, nil
}

func finishedTime(unixNS int64, fallback time.Time) time.Time {
	if unixNS > 0 {
		return time.Unix(0, unixNS)
	}
	return fallback
}

// prewarm recomputes journal-hinted decompositions under the pool's
// base context so the cache is warm before clients re-submit.
func (p *Pool) prewarm(hints []journal.SpectrumHint, nets map[string]RestoredNetlist) {
	for _, h := range hints {
		rn, ok := nets[h.Hash]
		if !ok || h.Pairs < 2 {
			continue
		}
		model, err := spectral.ParseModel(h.Model)
		if err != nil {
			continue
		}
		if p.baseCtx.Err() != nil {
			return
		}
		key := speccache.Key{Hash: h.Hash, Model: h.Model}
		p.cache.MarkExpected(key)
		// The tiered fetch means a prewarm against a populated persistent
		// store repopulates the LRU by decoding, not recomputing — the
		// zero-recompute warm restart. Remote is excluded: a restart
		// should not hammer shard peers for work it can do itself.
		_, hit, err := p.fetchSpectrum(p.baseCtx, rn.Netlist, key, model, h.Pairs, false)
		if p.tracer != nil && err == nil && !hit {
			p.tracer.Add("speccache.prewarmed", 1)
		}
	}
}

// RestoreStatsSnapshot returns the stats of the Restore that rebuilt
// this pool, or nil if the pool was not restored from a journal.
func (p *Pool) RestoreStatsSnapshot() *RestoreStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.restored == nil {
		return nil
	}
	c := *p.restored
	return &c
}

// Journal exposes the pool's journal (nil when the pool is not
// durable), for the serving layer's metrics.
func (p *Pool) Journal() *journal.Journal { return p.jnl }

// maybeCompact rewrites the journal once enough finish records have
// accumulated since the last compaction: the log's useful content is
// the live state, and an unbounded history only slows the next replay.
func (p *Pool) maybeCompact() {
	if p.jnl == nil {
		return
	}
	p.mu.Lock()
	p.finishSince++
	due := p.finishSince >= p.cfg.CompactEvery && !p.compacting
	if due {
		p.compacting = true
		p.finishSince = 0
	}
	p.mu.Unlock()
	if !due {
		return
	}
	defer func() {
		p.mu.Lock()
		p.compacting = false
		p.mu.Unlock()
	}()
	_ = p.CompactJournal()
}

// CompactJournal folds the pool's live state (plus any extra records a
// serving layer registered via SetSnapshotExtra) into a fresh journal
// segment, dropping superseded history. Safe to call at any time; it is
// also the recovery path after a journal write error. The snapshot is
// taken by the journal with appends excluded, so a submission or finish
// acknowledged while the compaction runs cannot be deleted with the old
// segments.
func (p *Pool) CompactJournal() error {
	if p.jnl == nil {
		return nil
	}
	if err := p.jnl.CompactWith(p.snapshotRecords); err != nil {
		p.noteJournalError()
		return err
	}
	if p.tracer != nil {
		p.tracer.Add("journal.compactions", 1)
	}
	return nil
}

// snapshotRecords builds the compaction snapshot: every stored netlist,
// one submit per tracked job, and a finish for each terminal one. The
// journal calls it from CompactWith with appends gated; every journal
// write happens after the state it records is published (jobs enter
// p.jobs before journalSubmit, terminal states are set before
// journalFinish), so an append that completed before the gate closed is
// always visible here.
func (p *Pool) snapshotRecords() []journal.Record {
	var recs []journal.Record
	seenNet := make(map[string]bool)
	if p.snapshotExtra != nil {
		for _, r := range p.snapshotExtra() {
			if r.Type == journal.TypeNetlist {
				if seenNet[r.Hash] {
					continue
				}
				seenNet[r.Hash] = true
			}
			recs = append(recs, r)
		}
	}

	p.mu.Lock()
	ids := append([]string(nil), p.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := p.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	p.mu.Unlock()

	addNet := func(hash string, h *spectral.Netlist) {
		if h == nil || seenNet[hash] {
			return
		}
		var buf bytes.Buffer
		if err := spectral.SaveNetlist(&buf, "", h); err == nil {
			seenNet[hash] = true
			recs = append(recs, journal.Record{
				Type: journal.TypeNetlist, Hash: hash, Netlist: buf.Bytes(),
			})
		}
	}
	for _, j := range jobs {
		addNet(j.req.Hash, j.req.Netlist)
		if j.req.Kind == KindDelta {
			addNet(j.req.BaseHash, j.req.BaseNetlist)
		}
	}
	for _, j := range jobs {
		recs = append(recs, journal.Record{
			Type: journal.TypeSubmit, ID: j.id, Hash: j.req.Hash,
			Spec: specOf(j.req, j.shedFromD), UnixNS: j.created.UnixNano(),
		})
		j.mu.Lock()
		st, jerr, res, fin := j.state, j.err, j.result, j.finished
		j.mu.Unlock()
		if isTerminal(st) {
			recs = append(recs, finishRecord(j.id, st, res, jerr, fin.UnixNano()))
		}
	}
	return recs
}

// SetSnapshotExtra registers a provider of extra records (typically the
// HTTP layer's stored netlists) included in every journal compaction.
// Call before Start.
func (p *Pool) SetSnapshotExtra(fn func() []journal.Record) { p.snapshotExtra = fn }
