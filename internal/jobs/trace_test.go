package jobs

import (
	"context"
	"testing"

	spectral "repro"
	"repro/internal/trace"
)

// TestJobExecutionTraced pins the span shape of one pool execution: a
// root "job" span carrying the job id, with the retroactive queue-wait
// span and the run span under it, and the spectrum-cache lookup (plus
// the decompose it triggered) nested inside the run.
func TestJobExecutionTraced(t *testing.T) {
	defer leakCheck(t)()
	ring := trace.NewRing(256)
	tracer := trace.New(ring)

	h := testNetlist(t)
	p := NewPool(Config{Workers: 1, QueueDepth: 8})
	p.SetTracer(tracer)
	p.Start()
	defer p.Shutdown(context.Background())

	j, err := p.Submit(Request{Netlist: h, Kind: KindPartition, Opts: spectral.Options{K: 2, Method: spectral.MELO}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	recs := ring.Snapshot()
	byName := map[string][]trace.SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = append(byName[r.Name], r)
	}
	one := func(name string) trace.SpanRecord {
		t.Helper()
		if len(byName[name]) != 1 {
			t.Fatalf("span %q recorded %d times, want 1", name, len(byName[name]))
		}
		return byName[name][0]
	}

	root := one("job")
	if root.Parent != 0 {
		t.Errorf("job span has parent %d, want none", root.Parent)
	}
	if got := attrOf(root, "job"); got != j.ID() {
		t.Errorf("job span id attr = %q, want %q", got, j.ID())
	}
	if got := attrOf(root, "kind"); got != string(KindPartition) {
		t.Errorf("job span kind attr = %q", got)
	}

	queue, run := one("job.queue"), one("job.run")
	if queue.Parent != root.Span {
		t.Errorf("job.queue parent = %d, want job (%d)", queue.Parent, root.Span)
	}
	if run.Parent != root.Span {
		t.Errorf("job.run parent = %d, want job (%d)", run.Parent, root.Span)
	}
	if queue.Start.After(root.Start) {
		t.Errorf("queue wait starts at %v, after the job span %v — StartAt lost the submit time", queue.Start, root.Start)
	}

	lookup := one("cache.lookup")
	if lookup.Parent != run.Span {
		t.Errorf("cache.lookup parent = %d, want job.run (%d)", lookup.Parent, run.Span)
	}
	if got := attrOf(lookup, "hit"); got != "false" {
		t.Errorf("first lookup hit attr = %q, want false", got)
	}
	// The compute ran on the pool's base context but adopted the job's
	// trace: its decompose span must nest under the lookup.
	dec := one("decompose")
	if dec.Parent != lookup.Span {
		t.Errorf("decompose parent = %d, want cache.lookup (%d)", dec.Parent, lookup.Span)
	}
	if tracer.Counter("speccache.misses") != 1 {
		t.Errorf("speccache.misses = %d, want 1", tracer.Counter("speccache.misses"))
	}
}

func attrOf(r trace.SpanRecord, key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}
