package jobs

import (
	"context"
	"sync"
	"time"

	spectral "repro"
	"repro/internal/speccache"
	"repro/internal/trace"
)

// batcher coalesces spectrum requests: jobs needing a decomposition of
// the same (netlist fingerprint, clique model) within one batch window
// share a single fetch sized to the batch's largest request — the
// prefix-maximal pair count, generalizing the cache's singleflight
// (which only coalesces requests arriving while a compute is already in
// flight, and only at the first request's size).
//
// A batch fires when its window elapses or when it reaches max members,
// whichever comes first. Each member gets its own delivery: a cancelled
// member abandons its (buffered) slot without holding up the rest.
type batcher struct {
	p      *Pool
	window time.Duration
	max    int

	mu      sync.Mutex
	pending map[speccache.Key]*specBatch
}

// specBatch is one open batch window. members and pairs grow under
// batcher.mu until fired flips, after which the batch is immutable.
type specBatch struct {
	key     speccache.Key
	model   spectral.Model
	h       *spectral.Netlist
	pairs   int // prefix-maximal over members
	opened  time.Time
	timer   *time.Timer
	fired   bool
	members []chan batchResult
}

// batchResult is what a fired batch delivers to each member.
type batchResult struct {
	sp      *spectral.Spectrum
	hit     bool
	size    int       // members in the batch
	firedAt time.Time // when the window closed (wait accounting)
	err     error
}

func newBatcher(p *Pool, window time.Duration, max int) *batcher {
	return &batcher{p: p, window: window, max: max, pending: make(map[speccache.Key]*specBatch)}
}

// fetch joins (or opens) the batch for key and waits for it to fire.
// The caller's context only governs its own wait: a member cancelled
// mid-window stops waiting, but the batch still fires for the others.
func (b *batcher) fetch(ctx context.Context, j *Job, key speccache.Key, model spectral.Model, pairs int) (*spectral.Spectrum, bool, error) {
	joined := time.Now()
	ch := make(chan batchResult, 1) // buffered: delivery never blocks on a gone member
	b.mu.Lock()
	sb, ok := b.pending[key]
	if !ok {
		sb = &specBatch{key: key, model: model, h: j.req.Netlist, opened: joined}
		sb.timer = time.AfterFunc(b.window, func() { b.fire(sb) })
		b.pending[key] = sb
	}
	if pairs > sb.pairs {
		sb.pairs = pairs
	}
	sb.members = append(sb.members, ch)
	full := len(sb.members) >= b.max
	b.mu.Unlock()

	if full {
		b.fire(sb) // size trigger; fire is idempotent vs the timer
	}
	select {
	case r := <-ch:
		j.recordBatch(r.firedAt.Sub(joined), r.size)
		return r.sp, r.hit, r.err
	case <-ctx.Done():
		j.recordBatch(time.Since(joined), 0)
		return nil, false, ctx.Err()
	}
}

// fire closes the batch (idempotently), runs one tiered fetch at the
// prefix-maximal size under the pool's base context, and delivers the
// result to every member. It runs on the timer goroutine (deadline
// trigger) or the member that filled the batch (size trigger).
func (b *batcher) fire(sb *specBatch) {
	b.mu.Lock()
	if sb.fired {
		b.mu.Unlock()
		return
	}
	sb.fired = true
	delete(b.pending, sb.key)
	sb.timer.Stop()
	members := sb.members
	pairs := sb.pairs
	b.mu.Unlock()

	firedAt := time.Now()
	b.p.batchesFired.Add(1)
	b.p.batchedJobs.Add(uint64(len(members)))

	ctx := b.p.baseCtx
	if b.p.tracer != nil {
		ctx = trace.WithTracer(ctx, b.p.tracer)
	}
	ctx, span := trace.Start(ctx, "batch.fire",
		trace.Int("members", len(members)), trace.Int("pairs", pairs),
		trace.Str("model", sb.key.Model))
	sp, hit, err := b.p.fetchSpectrum(ctx, sb.h, sb.key, sb.model, pairs, true)
	if span != nil {
		span.Annotate(trace.Bool("hit", hit))
		span.End()
		trace.FromContext(ctx).Add("jobs.batched", int64(len(members)))
	}
	for _, ch := range members {
		ch <- batchResult{sp: sp, hit: hit, size: len(members), firedAt: firedAt, err: err}
	}
}
