package resilience

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/eigen"
	"repro/internal/linalg"
	"repro/internal/trace"
)

// EigenPolicy configures SolveEigen's retry ladder. The zero value
// selects the defaults noted on each field.
type EigenPolicy struct {
	// Tol is the relative residual tolerance. Default 1e-6 (the
	// pipeline's ordering-grade tolerance; see eigen.SmallestEigenpairs).
	Tol float64
	// MaxSparseAttempts bounds the Lanczos attempts (initial try plus
	// seed-restarts with escalated Krylov caps). Default 3.
	MaxSparseAttempts int
	// DenseDirectN solves densely outright for operators at or below
	// this dimension, where the dense solver is both exact and faster
	// than Lanczos. Default 256.
	DenseDirectN int
	// DenseFallbackN bounds the dense-fallback rung: after the sparse
	// attempts are exhausted, operators at or below this dimension are
	// handed to the slower-but-sure dense solver. Default 4096.
	DenseFallbackN int
	// NoDenseFallback disables the dense-fallback rung regardless of
	// dimension (tests use this to force the degradation rung).
	NoDenseFallback bool
	// MinD is the smallest usable decomposition: degradation below this
	// many pairs fails the solve instead. Default 2 (the trivial pair
	// plus one informative eigenvector — the least the paper's ordering
	// heuristics can work with).
	MinD int
	// BaseSeed seeds the first Lanczos attempt; restarts use BaseSeed+1,
	// BaseSeed+2, … so every rung is deterministic. Default 1.
	BaseSeed int64
	// Faults, when non-nil, injects the plan's deterministic faults
	// into every attempt.
	Faults *FaultPlan
	// Workers bounds the goroutines the sparse solver's kernels may
	// use (see eigen.LanczosOptions.Workers). 0 selects the process
	// default; 1 forces serial. Every rung of the ladder is
	// deterministic at every setting — the kernels are
	// worker-invariant and the dense rungs are serial.
	Workers int
}

// Exported zero-value resolutions of EigenPolicy, for callers (the
// warm-start path) that must make the same regime decisions the ladder
// makes without running it.
const (
	// DefaultTol is the relative residual tolerance the ladder solves
	// to when the policy leaves Tol zero.
	DefaultTol = 1e-6
	// DefaultDenseDirectN is the problem size at or below which the
	// ladder prefers the dense solver outright.
	DefaultDenseDirectN = 256
)

func (p EigenPolicy) withDefaults() EigenPolicy {
	if p.Tol <= 0 {
		p.Tol = DefaultTol
	}
	if p.MaxSparseAttempts <= 0 {
		p.MaxSparseAttempts = 3
	}
	if p.DenseDirectN <= 0 {
		p.DenseDirectN = DefaultDenseDirectN
	}
	if p.DenseFallbackN <= 0 {
		p.DenseFallbackN = 4096
	}
	if p.MinD <= 0 {
		p.MinD = 2
	}
	if p.BaseSeed == 0 {
		p.BaseSeed = 1
	}
	return p
}

// PartialDecomposition is the outcome of a resilient eigensolve: the
// delivered eigenpairs plus a record of how they were obtained. In the
// common case Delivered == Requested; after the degradation rung
// Delivered < Requested and Degraded is true — the "as many
// eigenvectors as practically possible" contract.
type PartialDecomposition struct {
	// Dec holds the Delivered smallest eigenpairs.
	Dec *eigen.Decomposition
	// Requested and Delivered count the eigenpairs asked for and
	// obtained.
	Requested, Delivered int
	// Attempts counts the solver attempts consumed (Lanczos tries plus
	// dense solves).
	Attempts int
	// DenseFallback reports that the dense rung produced the result.
	DenseFallback bool
	// Degraded reports Delivered < Requested.
	Degraded bool
	// Notes is a human-readable log of the rungs taken, for diagnostics
	// and error reports.
	Notes []string
}

func (r *PartialDecomposition) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// SolveEigen computes the d smallest eigenpairs of the symmetric
// operator a, climbing a retry ladder instead of failing on the first
// non-convergence:
//
//  1. Lanczos with the default Krylov budget.
//  2. On non-convergence (or numerical breakdown): restart with a fresh
//     random seed and a doubled (bounded) Krylov cap, up to
//     MaxSparseAttempts total tries.
//  3. Dense tridiagonal (tred2/tql2) fallback when the operator is
//     small enough — slower but sure.
//  4. Degrade d: return the d' < d pairs that did converge (smallest
//     pairs converge first, so the prefix is the useful one), flagged
//     Degraded, so downstream orderings still run with fewer
//     eigenvectors.
//
// Small operators (or d close to n) go straight to the dense solver.
// ctx is honoured at every solver iteration boundary; cancellation
// returns ctx.Err() unwrapped. The error from an exhausted ladder wraps
// the last rung's failure and lists every rung tried.
func SolveEigen(ctx context.Context, a linalg.Operator, d int, pol EigenPolicy) (_ *PartialDecomposition, retErr error) {
	n := a.Dim()
	if d < 1 {
		return nil, fmt.Errorf("resilience: requested %d eigenpairs, want >= 1", d)
	}
	if d > n {
		return nil, fmt.Errorf("resilience: requested %d eigenpairs of a %d-dimensional operator", d, n)
	}
	pol = pol.withDefaults()
	res := &PartialDecomposition{Requested: d}
	var lastErr error

	ctx, span := trace.Start(ctx, "eigen.solve", trace.Int("n", n), trace.Int("want", d))
	rung := "exhausted"
	defer func() {
		if isCtxErr(retErr) {
			rung = "cancelled"
		}
		span.Annotate(trace.Str("rung", rung), trace.Int("attempts", res.Attempts))
		trace.Add(ctx, "resilience.rung."+rung, 1)
		span.End()
	}()

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Small problems: dense is exact and cheap; no ladder needed unless
	// a fault is injected.
	if n <= pol.DenseDirectN || d > n/3 {
		res.Attempts++
		dec, err := denseSolve(ctx, a, d, pol.Faults)
		if err == nil {
			res.Dec, res.Delivered = dec, d
			res.note("dense direct solve (n=%d)", n)
			rung = "dense-direct"
			return res, nil
		}
		if isCtxErr(err) {
			return nil, err
		}
		res.note("dense direct solve failed: %v", err)
		lastErr = err
		// The dense solver only fails on injected faults or structural
		// problems; the sparse ladder below may still succeed.
	}

	// Rungs 1–2: Lanczos, then seed-restarts with bounded backoff on
	// the Krylov cap.
	dim := 12*d + 100
	if dim < 300 {
		dim = 300
	}
	if dim > n {
		dim = n
	}
	var best *eigen.Decomposition
	for attempt := 1; attempt <= pol.MaxSparseAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Attempts++
		seed := pol.BaseSeed + int64(attempt-1)
		opts := &eigen.LanczosOptions{Tol: pol.Tol, MaxDim: dim, Seed: seed, Workers: pol.Workers}
		if pol.Faults != nil {
			opts.Fault = pol.Faults
		}
		dec, err := eigen.LanczosCtx(ctx, a, d, opts)
		if err == nil {
			res.Dec, res.Delivered = dec, d
			res.note("lanczos converged (attempt %d, seed %d, maxdim %d)", attempt, seed, dim)
			rung = "lanczos"
			return res, nil
		}
		if isCtxErr(err) {
			return nil, err
		}
		lastErr = err
		res.note("lanczos failed (attempt %d, seed %d, maxdim %d): %v", attempt, seed, dim, err)
		if dec != nil && (best == nil || dec.D() > best.D()) {
			best = dec // converged prefix, kept for the degradation rung
		}
		if dim < n {
			dim *= 2
			if dim > n {
				dim = n
			}
		}
	}

	// Rung 3: slower-but-sure dense solve for small n.
	if !pol.NoDenseFallback && n <= pol.DenseFallbackN {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Attempts++
		dec, err := denseSolve(ctx, a, d, pol.Faults)
		if err == nil {
			res.Dec, res.Delivered = dec, d
			res.DenseFallback = true
			res.note("dense fallback solve (n=%d)", n)
			rung = "dense-fallback"
			return res, nil
		}
		if isCtxErr(err) {
			return nil, err
		}
		lastErr = err
		res.note("dense fallback failed: %v", err)
	}

	// Rung 4: degrade d — deliver the converged prefix if it is usable.
	if best != nil && best.D() >= pol.MinD {
		res.Dec, res.Delivered = best, best.D()
		res.Degraded = true
		res.note("degraded to %d of %d requested eigenpairs", best.D(), d)
		rung = "degraded"
		return res, nil
	}

	return nil, fmt.Errorf("resilience: eigensolve ladder exhausted after %d attempts (%v): %w",
		res.Attempts, res.Notes, lastErr)
}

// denseSolve runs the exact dense path, honouring ctx and the fault
// plan's attempt schedule.
func denseSolve(ctx context.Context, a linalg.Operator, d int, faults *FaultPlan) (*eigen.Decomposition, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if faults != nil {
		if _, err := faults.StartAttempt(); err != nil {
			return nil, err
		}
	}
	dec, err := eigen.SymEigCtx(ctx, eigen.Densify(a))
	if err != nil {
		return nil, err
	}
	return dec.Truncate(d)
}

// IsContextError reports whether err is (or wraps) a context
// cancellation or deadline error. The hardening layer never wraps these:
// they must stay visible to errors.Is at the outermost caller.
func IsContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func isCtxErr(err error) bool { return IsContextError(err) }
