package resilience

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/eigen"
)

// ErrInjected is the error a FaultPlan injects for eigensolve attempts
// listed in FailAttempts.
var ErrInjected = errors.New("resilience: injected eigensolve failure")

// FaultPlan is a deterministic fault-injection schedule for eigensolver
// attempts. It counts attempts globally (across Lanczos restarts, dense
// fallbacks, and separate solves routed through the same plan), so a
// test can say "fail the 2nd eigensolve" and know exactly which rung of
// the retry ladder it exercises. The zero value injects nothing. Safe
// for concurrent use.
//
// FaultPlan implements eigen.FaultHook; hand it to SolveEigen via
// EigenPolicy.Faults or directly to eigen.LanczosOptions.Fault.
type FaultPlan struct {
	// FailAttempts lists 1-based attempt numbers that abort immediately
	// with ErrInjected — a hard solver failure.
	FailAttempts []int
	// StallAttempts lists attempts whose convergence acceptance is
	// suppressed, forcing them to their iteration budget and a
	// non-convergence error — a convergence stall.
	StallAttempts []int
	// StallConverged caps how many leading eigenpairs a stalled attempt
	// reports as converged in its partial result (simulating the
	// partial convergence of a clustered spectrum). 0 reports none.
	StallConverged int
	// NaNAttempts lists attempts that get a NaN injected into the
	// solver's iterate at step NaNStep — a numerical corruption.
	NaNAttempts []int
	// NaNStep is the 1-based iteration at which the NaN is injected.
	// Default 3.
	NaNStep int

	mu      sync.Mutex
	attempt int
}

// StartAttempt implements eigen.FaultHook: it advances the attempt
// counter and returns the directive (or injected error) scheduled for
// the new attempt.
func (p *FaultPlan) StartAttempt() (eigen.FaultDirective, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.attempt++
	if containsInt(p.FailAttempts, p.attempt) {
		return eigen.FaultDirective{}, fmt.Errorf("attempt %d: %w", p.attempt, ErrInjected)
	}
	if containsInt(p.StallAttempts, p.attempt) {
		return eigen.FaultDirective{Stall: true, MaxConverged: p.StallConverged}, nil
	}
	return eigen.FaultDirective{}, nil
}

// AtStep implements eigen.FaultHook: it corrupts the iterate with a NaN
// when the current attempt and step match the plan.
func (p *FaultPlan) AtStep(step int, v []float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !containsInt(p.NaNAttempts, p.attempt) {
		return
	}
	nanStep := p.NaNStep
	if nanStep <= 0 {
		nanStep = 3
	}
	if step == nanStep && len(v) > 0 {
		v[0] = math.NaN()
	}
}

// Attempts returns how many solver attempts the plan has observed.
func (p *FaultPlan) Attempts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.attempt
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

var _ eigen.FaultHook = (*FaultPlan)(nil)
