package resilience

import (
	"context"
	"errors"
	"testing"
)

func TestProtectConvertsPanic(t *testing.T) {
	err := Protect(StageOrdering, func() error {
		panic("boom")
	})
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want *StageError", err)
	}
	if se.Stage != StageOrdering || !se.Panicked {
		t.Fatalf("got stage=%v panicked=%v, want ordering/true", se.Stage, se.Panicked)
	}
	if len(se.Stack) == 0 {
		t.Fatal("panic StageError carries no stack")
	}
}

func TestProtectAttributesErrors(t *testing.T) {
	cause := errors.New("bad split")
	err := Protect(StageSplit, func() error { return cause })
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StageSplit || se.Panicked {
		t.Fatalf("got %v, want non-panic StageError at split", err)
	}
	if !errors.Is(err, cause) {
		t.Fatal("StageError does not unwrap to the cause")
	}
}

func TestProtectKeepsInnerStage(t *testing.T) {
	err := Protect(StageSplit, func() error {
		return Protect(StageEigen, func() error { return errors.New("diverged") })
	})
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StageEigen {
		t.Fatalf("got %v, want innermost eigen attribution", err)
	}
}

func TestProtectPassesContextErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Protect(StageEigen, func() error { return ctx.Err() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	var se *StageError
	if errors.As(err, &se) {
		t.Fatal("context error should pass through unwrapped")
	}
}

func TestProtectNilError(t *testing.T) {
	if err := Protect(StageValidate, func() error { return nil }); err != nil {
		t.Fatalf("got %v, want nil", err)
	}
}

func TestFaultPlanSchedule(t *testing.T) {
	p := &FaultPlan{FailAttempts: []int{2}, StallAttempts: []int{3}, StallConverged: 4}
	if dir, err := p.StartAttempt(); err != nil || dir.Stall {
		t.Fatalf("attempt 1: got %v/%v, want clean", dir, err)
	}
	if _, err := p.StartAttempt(); !errors.Is(err, ErrInjected) {
		t.Fatalf("attempt 2: got %v, want ErrInjected", err)
	}
	dir, err := p.StartAttempt()
	if err != nil || !dir.Stall || dir.MaxConverged != 4 {
		t.Fatalf("attempt 3: got %v/%v, want stall with MaxConverged=4", dir, err)
	}
	if p.Attempts() != 3 {
		t.Fatalf("Attempts() = %d, want 3", p.Attempts())
	}
}
