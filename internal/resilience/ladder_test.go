package resilience

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/eigen"
	"repro/internal/linalg"
)

// pathLaplacian builds the Laplacian of an unweighted path on n
// vertices — a simple operator with a well-separated small spectrum.
func pathLaplacian(n int) *linalg.CSR {
	var ts []linalg.Triplet
	for i := 0; i < n; i++ {
		deg := 2.0
		if i == 0 || i == n-1 {
			deg = 1.0
		}
		ts = append(ts, linalg.Triplet{Row: i, Col: i, Val: deg})
		if i+1 < n {
			ts = append(ts, linalg.Triplet{Row: i, Col: i + 1, Val: -1})
			ts = append(ts, linalg.Triplet{Row: i + 1, Col: i, Val: -1})
		}
	}
	return linalg.NewCSR(n, n, ts)
}

// sparsePolicy forces the Lanczos rungs even on small test operators.
func sparsePolicy() EigenPolicy {
	return EigenPolicy{DenseDirectN: 1}
}

// refValues returns the d smallest exact eigenvalues via the dense
// solver.
func refValues(t *testing.T, a *linalg.CSR, d int) []float64 {
	t.Helper()
	dec, err := eigen.SymEig(a.ToDense())
	if err != nil {
		t.Fatal(err)
	}
	return dec.Values[:d]
}

func checkValues(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("value %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSolveEigenClean(t *testing.T) {
	a := pathLaplacian(60)
	res, err := SolveEigen(context.Background(), a, 5, sparsePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 5 || res.Degraded || res.DenseFallback || res.Attempts != 1 {
		t.Fatalf("clean solve took unexpected path: %+v", res)
	}
	checkValues(t, res.Dec.Values, refValues(t, a, 5))
}

func TestSolveEigenDenseDirect(t *testing.T) {
	a := pathLaplacian(40)
	res, err := SolveEigen(context.Background(), a, 5, EigenPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 || res.Delivered != 5 {
		t.Fatalf("dense direct path: %+v", res)
	}
	checkValues(t, res.Dec.Values, refValues(t, a, 5))
}

// Rung 1: a hard failure on the first attempt is absorbed by a
// seed-restart.
func TestSolveEigenSeedRestart(t *testing.T) {
	a := pathLaplacian(60)
	plan := &FaultPlan{FailAttempts: []int{1}}
	pol := sparsePolicy()
	pol.Faults = plan
	res, err := SolveEigen(context.Background(), a, 5, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 || res.Degraded || res.DenseFallback {
		t.Fatalf("seed-restart rung: %+v", res)
	}
	checkValues(t, res.Dec.Values, refValues(t, a, 5))
}

// Rung 2: a convergence stall triggers a restart with an escalated
// Krylov cap.
func TestSolveEigenStallEscalation(t *testing.T) {
	a := pathLaplacian(60)
	plan := &FaultPlan{StallAttempts: []int{1}}
	pol := sparsePolicy()
	pol.Faults = plan
	res, err := SolveEigen(context.Background(), a, 5, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 || res.Degraded || res.DenseFallback {
		t.Fatalf("stall-escalation rung: %+v", res)
	}
	checkValues(t, res.Dec.Values, refValues(t, a, 5))
}

// Rung 3: exhausting every sparse attempt falls back to the dense
// solver.
func TestSolveEigenDenseFallback(t *testing.T) {
	a := pathLaplacian(60)
	plan := &FaultPlan{StallAttempts: []int{1, 2, 3}}
	pol := sparsePolicy()
	pol.Faults = plan
	res, err := SolveEigen(context.Background(), a, 5, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DenseFallback || res.Degraded || res.Attempts != 4 {
		t.Fatalf("dense-fallback rung: %+v", res)
	}
	checkValues(t, res.Dec.Values, refValues(t, a, 5))
}

// Rung 4: with the dense fallback unavailable, the converged prefix is
// delivered as a degraded (d' < d) decomposition.
func TestSolveEigenDegradation(t *testing.T) {
	a := pathLaplacian(60)
	plan := &FaultPlan{StallAttempts: []int{1, 2, 3}, StallConverged: 3}
	pol := sparsePolicy()
	pol.Faults = plan
	pol.NoDenseFallback = true
	res, err := SolveEigen(context.Background(), a, 5, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Delivered != 3 || res.Requested != 5 {
		t.Fatalf("degradation rung: %+v", res)
	}
	checkValues(t, res.Dec.Values, refValues(t, a, 3))
}

// NaN corruption mid-iteration is detected as a breakdown and absorbed
// by a restart.
func TestSolveEigenNaNRecovery(t *testing.T) {
	a := pathLaplacian(60)
	plan := &FaultPlan{NaNAttempts: []int{1}, NaNStep: 3}
	pol := sparsePolicy()
	pol.Faults = plan
	res, err := SolveEigen(context.Background(), a, 5, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 || res.Degraded {
		t.Fatalf("NaN-recovery: %+v", res)
	}
	checkValues(t, res.Dec.Values, refValues(t, a, 5))
}

// The NaN fault must surface as ErrBreakdown from the solver itself.
func TestLanczosBreakdownError(t *testing.T) {
	a := pathLaplacian(60)
	plan := &FaultPlan{NaNAttempts: []int{1}, NaNStep: 3}
	_, err := eigen.LanczosCtx(context.Background(), a, 5, &eigen.LanczosOptions{Fault: plan})
	if !errors.Is(err, eigen.ErrBreakdown) {
		t.Fatalf("got %v, want ErrBreakdown", err)
	}
}

func TestSolveEigenExhausted(t *testing.T) {
	a := pathLaplacian(60)
	plan := &FaultPlan{FailAttempts: []int{1, 2, 3, 4}}
	pol := sparsePolicy()
	pol.Faults = plan
	_, err := SolveEigen(context.Background(), a, 5, pol)
	if err == nil {
		t.Fatal("want error after exhausting every rung")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("exhaustion error %v does not wrap the last cause", err)
	}
}

// cancellingOp cancels its context after a fixed number of MatVec
// applications, then counts how many more are issued — proving the
// solver stops at the next iteration boundary.
type cancellingOp struct {
	inner      linalg.Operator
	cancel     context.CancelFunc
	cancelAt   int
	calls      int
	afterCount int
}

func (c *cancellingOp) Dim() int { return c.inner.Dim() }

func (c *cancellingOp) MatVec(x, y []float64) {
	c.calls++
	if c.calls == c.cancelAt {
		c.cancel()
	}
	if c.calls > c.cancelAt {
		c.afterCount++
	}
	c.inner.MatVec(x, y)
}

func TestSolveEigenCancellationMidSolve(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	op := &cancellingOp{inner: pathLaplacian(120), cancel: cancel, cancelAt: 5}
	_, err := SolveEigen(ctx, op, 5, sparsePolicy())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if op.afterCount > 0 {
		t.Fatalf("solver issued %d MatVecs after cancellation; want 0 (abort within one iteration)", op.afterCount)
	}
}

func TestSolveEigenPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveEigen(ctx, pathLaplacian(60), 5, sparsePolicy()); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestSolveEigenBadD(t *testing.T) {
	a := pathLaplacian(10)
	if _, err := SolveEigen(context.Background(), a, 0, EigenPolicy{}); err == nil {
		t.Fatal("d = 0 accepted")
	}
	if _, err := SolveEigen(context.Background(), a, 11, EigenPolicy{}); err == nil {
		t.Fatal("d > n accepted")
	}
}
