// Package resilience is the hardening layer of the partitioning
// pipeline: staged panic recovery, deterministic fault injection, and
// the eigensolver retry/fallback/degradation ladder.
//
// The paper's thesis — "use as many eigenvectors as practically
// possible" — implies a degradation policy rather than a hard failure
// when an eigensolve struggles: multiway spectral theory (Riolo–Newman;
// Lee–Oveis Gharan–Trevisan's higher-order Cheeger inequalities) shows
// partition quality degrades gracefully with fewer eigenvectors, so a
// solver that converged only d' < d pairs still supports a useful MELO
// ordering. SolveEigen encodes exactly that ladder; FaultPlan lets
// tests prove every rung fires.
package resilience

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// Stage identifies a phase of the partitioning pipeline for error
// attribution.
type Stage string

const (
	// StageValidate covers input and option validation at the façade
	// boundary.
	StageValidate Stage = "validate"
	// StageCliqueModel covers the hypergraph-to-graph clique expansion.
	StageCliqueModel Stage = "clique-model"
	// StageEigen covers eigensolves (Lanczos, block, dense, CG).
	StageEigen Stage = "eigen"
	// StageOrdering covers ordering construction (MELO, Fiedler, SFC).
	StageOrdering Stage = "ordering"
	// StageSplit covers turning orderings into partitionings (splits,
	// DP-RP) and the direct partitioners.
	StageSplit Stage = "split"
	// StageRefine covers FM post-refinement.
	StageRefine Stage = "refine"
	// StageMultilevel covers the multilevel V-cycle (coarsening,
	// per-level projection and refinement); the coarsest solve inside
	// it re-enters the regular stages.
	StageMultilevel Stage = "multilevel"
)

// StageError attributes a failure — an error return or a recovered
// panic — to the pipeline stage where it occurred.
type StageError struct {
	// Stage is the phase that failed.
	Stage Stage
	// Err is the underlying cause. For recovered panics it wraps the
	// panic value.
	Err error
	// Panicked reports whether the failure was a recovered panic rather
	// than an error return.
	Panicked bool
	// Stack holds the goroutine stack at recovery time (panics only).
	Stack []byte
}

// Error implements the error interface.
func (e *StageError) Error() string {
	if e.Panicked {
		return fmt.Sprintf("stage %s panicked: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("stage %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// Protect runs fn, converting a panic into a *StageError carrying the
// stage and the recovery stack, and attributing a plain error return to
// the stage. Errors that are already stage-attributed (from a nested
// Protect, or hand-built) and context cancellation errors pass through
// unchanged, so the innermost attribution and errors.Is(err,
// context.Canceled) checks both survive.
func Protect(stage Stage, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &StageError{
				Stage:    stage,
				Err:      fmt.Errorf("panic: %v", r),
				Panicked: true,
				Stack:    debug.Stack(),
			}
		}
	}()
	if err := fn(); err != nil {
		return Attribute(stage, err)
	}
	return nil
}

// Attribute wraps err in a *StageError for the given stage unless it is
// already stage-attributed or a context cancellation error.
func Attribute(stage Stage, err error) error {
	if err == nil {
		return nil
	}
	var se *StageError
	if errors.As(err, &se) || isCtxErr(err) {
		return err
	}
	return &StageError{Stage: stage, Err: err}
}
