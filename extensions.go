package spectral

// This file exposes the extension systems built around the core
// reproduction: direct vector k-partitioning (the paper's closing
// research direction), hierarchical clustering, spectral lower bounds,
// the Hendrickson–Leland 2^d-way partitioner, and the Frankle–Karp probe
// bipartitioner.

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/cluster"
	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hl"
	"repro/internal/linalg"
	"repro/internal/probe"
	"repro/internal/vecpart"
	"repro/internal/vkp"
)

// ClusterTree is a hierarchical clustering of a netlist (see Cluster).
type ClusterTree = cluster.Node

// Cluster builds a hierarchical clustering of the netlist by recursive
// MELO bipartitioning, stopping at clusters of leafSize modules. Use
// (*ClusterTree).Flatten to extract a k-way partitioning and
// (*ClusterTree).Dendrogram to render the hierarchy.
func Cluster(h *Netlist, leafSize int) (*ClusterTree, error) {
	return cluster.Build(h, cluster.Options{LeafSize: leafSize, Model: graph.PartitioningSpecific})
}

// VectorPartition partitions the netlist with the direct vector
// k-partitioning heuristic: grow all k clusters simultaneously in the
// d-dimensional vector space, maximizing Σ_h ‖Y_h‖², then refine with
// single-vector moves. This is the "more sophisticated vector
// partitioning heuristics" direction the paper's conclusion proposes.
func VectorPartition(h *Netlist, k, d int) (*Partitioning, error) {
	if d <= 0 {
		d = 10
	}
	g, dec, err := decompose(h, graph.PartitioningSpecific, d)
	if err != nil {
		return nil, err
	}
	return vectorPartitionFrom(g, dec, k, d)
}

// vectorPartitionFrom is the decomposition-to-partitioning half of
// VectorPartition, shared with the main pipeline's VKP dispatch (which
// brings its own context, eigensolver policy and reusable spectrum).
func vectorPartitionFrom(g *graph.Graph, dec *eigen.Decomposition, k, d int) (*Partitioning, error) {
	used := d
	if used > dec.D()-1 {
		used = dec.D() - 1
	}
	if used < 1 {
		return nil, fmt.Errorf("spectral: netlist too small for vector partitioning")
	}
	// Skip the trivial eigenvector; scale with the truncation-balanced H.
	trimmed := trimTrivial(dec, used)
	H := vecpart.ChooseH(g.TotalDegree(), append([]float64{0}, trimmed.Values...), g.N())
	v, err := vecpart.FromDecomposition(trimmed, used, vecpart.MaxSum, H)
	if err != nil {
		return nil, err
	}
	res, err := vkp.Partition(v, vkp.Options{K: k})
	if err != nil {
		return nil, err
	}
	return res.Partition, nil
}

// trimTrivial drops the first (constant) eigenpair and keeps d pairs.
func trimTrivial(dec *eigen.Decomposition, d int) *eigen.Decomposition {
	n := dec.Vectors.Rows
	trimmed := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			trimmed.Set(i, j, dec.Vectors.At(i, j+1))
		}
	}
	return &eigen.Decomposition{
		Values:  append([]float64(nil), dec.Values[1:d+1]...),
		Vectors: trimmed,
	}
}

// HypercubePartition runs the Hendrickson–Leland style partitioner: d
// non-trivial eigenvectors produce 2^d balanced clusters via recursive
// median splits.
func HypercubePartition(h *Netlist, d int) (*Partitioning, error) {
	_, dec, err := decompose(h, graph.PartitioningSpecific, d)
	if err != nil {
		return nil, err
	}
	return hl.Partition(dec, d)
}

// ProbeBipartition runs the Frankle–Karp probe-vector bipartitioner on
// the netlist's vector instance: probes directions in d-space, rounds
// each to the best-projecting bipartition, keeps the best.
func ProbeBipartition(h *Netlist, d, probes int, minFrac float64) (*Partitioning, error) {
	if d <= 0 {
		d = 10
	}
	if minFrac <= 0 {
		minFrac = 0.45
	}
	g, dec, err := decompose(h, graph.PartitioningSpecific, d)
	if err != nil {
		return nil, err
	}
	used := d
	if used > dec.D()-1 {
		used = dec.D() - 1
	}
	trimmed := trimTrivial(dec, used)
	H := vecpart.ChooseH(g.TotalDegree(), append([]float64{0}, trimmed.Values...), g.N())
	v, err := vecpart.FromDecomposition(trimmed, used, vecpart.MaxSum, H)
	if err != nil {
		return nil, err
	}
	res, err := probe.Bipartition(v, probe.Options{Probes: probes, MinFrac: minFrac})
	if err != nil {
		return nil, err
	}
	return res.Partition, nil
}

// CutLowerBound returns the Donath–Hoffman spectral lower bound on the
// paper's cut objective f(P_k) = Σ_h E_h over all partitionings of the
// netlist's clique-model graph with the given cluster sizes. Any
// heuristic solution's F value can be compared against it.
func CutLowerBound(h *Netlist, sizes []int) (float64, error) {
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		return 0, err
	}
	return bounds.DonathHoffman(g, sizes)
}
