package spectral

import (
	"bytes"
	"strings"
	"testing"
)

func TestVectorPartition(t *testing.T) {
	h := smallBenchmark(t)
	p, err := VectorPartition(h, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 4 || p.N() != h.NumModules() {
		t.Fatal("wrong shape")
	}
	for c, s := range p.Sizes() {
		if s == 0 {
			t.Errorf("cluster %d empty", c)
		}
	}
	if sc := ScaledCost(h, p); sc <= 0 {
		t.Errorf("scaled cost %v", sc)
	}
}

func TestHypercubePartition(t *testing.T) {
	h := smallBenchmark(t)
	p, err := HypercubePartition(h, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 8 {
		t.Fatalf("K = %d, want 8", p.K)
	}
	min, max := p.MinMaxSize()
	if max-min > 4 {
		t.Errorf("median splits should balance: sizes %v", p.Sizes())
	}
}

func TestProbeBipartition(t *testing.T) {
	h := smallBenchmark(t)
	p, err := ProbeBipartition(h, 8, 32, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	n := h.NumModules()
	lo := int(0.45*float64(n) + 0.999999)
	if !p.IsBalanced(lo, n-lo) {
		t.Errorf("sizes %v violate balance", p.Sizes())
	}
}

func TestClusterTreeAndFlatten(t *testing.T) {
	h := smallBenchmark(t)
	tree, err := Cluster(h, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != h.NumModules() {
		t.Fatal("root does not cover the netlist")
	}
	p, err := tree.Flatten(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.K < 2 {
		t.Errorf("K = %d", p.K)
	}
	var buf bytes.Buffer
	tree.Dendrogram(&buf, h.Names)
	if !strings.Contains(buf.String(), "modules") {
		t.Error("dendrogram output empty")
	}
}

func TestCutLowerBound(t *testing.T) {
	h := smallBenchmark(t)
	n := h.NumModules()
	sizes := []int{n / 2, n - n/2}
	bound, err := CutLowerBound(h, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if bound < 0 {
		t.Errorf("negative bound %v", bound)
	}
	// Any heuristic bipartition's clique-model F must respect the bound
	// when its sizes match.
	p, err := Partition(h, Options{K: 2, Method: MELO, MinFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Sizes()
	b2, err := CutLowerBound(h, s)
	if err != nil {
		t.Fatal(err)
	}
	if b2 < 0 {
		t.Errorf("bound %v", b2)
	}
}

func TestVectorPartitionTooSmall(t *testing.T) {
	b := &Netlist{}
	_ = b
	// A 2-module netlist has only the trivial eigenvector after trimming
	// at d clamped — build it via the text loader.
	_, h, err := LoadNetlist(strings.NewReader("net n a b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VectorPartition(h, 2, 4); err != nil {
		// Either a clean error or a valid 2-way partition is acceptable;
		// an error must mention the cause.
		if !strings.Contains(err.Error(), "spectral") && !strings.Contains(err.Error(), "vkp") {
			t.Errorf("unhelpful error: %v", err)
		}
	}
}
