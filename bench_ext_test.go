package spectral

// Benchmarks for the extension systems: direct vector k-partitioning,
// the max-cut reduction, probe bipartitioning, Hendrickson–Leland
// splitting, hierarchical clustering, spectral bounds, and the
// adaptive-H / clique-model ablations.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/bounds"
	"repro/internal/dprp"
	"repro/internal/eigen"
	"repro/internal/fm"
	"repro/internal/graph"
	"repro/internal/kl"
	"repro/internal/maxcut"
	"repro/internal/melo"
	"repro/internal/partition"
)

// BenchmarkAblationVKP compares MELO+DP-RP against direct vector
// k-partitioning on the same instance: time and Scaled Cost.
func BenchmarkAblationVKP(b *testing.B) {
	c, err := bench.Lookup("prim1")
	if err != nil {
		b.Fatal(err)
	}
	h, err := bench.Generate(c.Scaled(*benchScale))
	if err != nil {
		b.Fatal(err)
	}
	g, dec, _ := benchPipeline(b, 10)
	_ = g
	_ = dec
	b.Run("melo+dprp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := melo.Order(g, dec, melo.NewOptions())
			if err != nil {
				b.Fatal(err)
			}
			dp, err := dprp.Partition(h, res.Order, dprp.Options{K: 4})
			if err != nil {
				b.Fatal(err)
			}
			_ = dp.ScaledCost
		}
	})
	b.Run("vkp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := VectorPartition(h, 4, 10)
			if err != nil {
				b.Fatal(err)
			}
			_ = partition.ScaledCost(h, p)
		}
	})
}

// BenchmarkAblationAdaptiveH measures MELO with and without the adaptive
// H re-estimation (the paper's Figure 2 Step 6).
func BenchmarkAblationAdaptiveH(b *testing.B) {
	g, dec, _ := benchPipeline(b, 10)
	for _, adaptive := range []bool{false, true} {
		name := "fixed-H"
		if adaptive {
			name = "adaptive-H"
		}
		b.Run(name, func(b *testing.B) {
			opts := melo.NewOptions()
			opts.AdaptiveH = adaptive
			for i := 0; i < b.N; i++ {
				if _, err := melo.Order(g, dec, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCliqueModels compares the three clique models'
// expansion cost and resulting SB cut quality.
func BenchmarkAblationCliqueModels(b *testing.B) {
	c, err := bench.Lookup("prim1")
	if err != nil {
		b.Fatal(err)
	}
	h, err := bench.Generate(c.Scaled(*benchScale))
	if err != nil {
		b.Fatal(err)
	}
	for _, model := range []graph.CliqueModel{graph.Standard, graph.PartitioningSpecific, graph.Frankle} {
		b.Run(model.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := graph.FromHypergraph(h, model, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eigen.SmallestEigenpairs(g.Laplacian(), 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaxCutProbe measures the §3 max-cut probe heuristic.
func BenchmarkMaxCutProbe(b *testing.B) {
	g := graph.RandomConnected(60, 180, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := maxcut.Probe(g, maxcut.ProbeOptions{Probes: 32, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHypercubePartition measures the Hendrickson–Leland splitter.
func BenchmarkHypercubePartition(b *testing.B) {
	c, err := bench.Lookup("prim1")
	if err != nil {
		b.Fatal(err)
	}
	h, err := bench.Generate(c.Scaled(*benchScale))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HypercubePartition(h, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterTree measures hierarchical clustering construction.
func BenchmarkClusterTree(b *testing.B) {
	c, err := bench.Lookup("bm1")
	if err != nil {
		b.Fatal(err)
	}
	h, err := bench.Generate(c.Scaled(*benchScale))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(h, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDonathHoffman measures the k-way lower bound (including its
// eigensolve).
func BenchmarkDonathHoffman(b *testing.B) {
	g := graph.RandomConnected(300, 900, 5)
	sizes := []int{100, 100, 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bounds.DonathHoffman(g, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeBipartition measures the Frankle–Karp probe search.
func BenchmarkProbeBipartition(b *testing.B) {
	c, err := bench.Lookup("prim1")
	if err != nil {
		b.Fatal(err)
	}
	h, err := bench.Generate(c.Scaled(*benchScale))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ProbeBipartition(h, 8, 16, 0.45); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKLRefine measures Kernighan-Lin refinement of a random
// balanced start.
func BenchmarkKLRefine(b *testing.B) {
	g := graph.RandomConnected(200, 600, 3)
	assign := make([]int, 200)
	for i := range assign {
		assign[i] = i % 2
	}
	p := partition.MustNew(assign, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := kl.Refine(g, p, kl.Options{MaxPasses: 2})
		if err != nil {
			b.Fatal(err)
		}
		if res.Cut > res.InitialCut {
			b.Fatal("KL worsened the cut")
		}
	}
}

// BenchmarkBlockKrylov measures the block eigensolver on a degenerate
// spectrum where single-vector Lanczos needs restarts.
func BenchmarkBlockKrylov(b *testing.B) {
	// The cycle's tightly clustered degenerate spectrum is the hard case;
	// MaxDim = n guarantees exact Rayleigh-Ritz in the limit.
	g := graph.Cycle(150)
	lap := g.Laplacian()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eigen.BlockKrylov(lap, 5, &eigen.BlockKrylovOptions{Block: 2, Tol: 1e-7, MaxDim: 150}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFMRefinePass measures a full FM refinement on a random start,
// complementing BenchmarkAblationFM's refinement of a good MELO start.
func BenchmarkFMRefinePass(b *testing.B) {
	c, err := bench.Lookup("bm1")
	if err != nil {
		b.Fatal(err)
	}
	h, err := bench.Generate(c.Scaled(*benchScale))
	if err != nil {
		b.Fatal(err)
	}
	n := h.NumModules()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i % 2
	}
	p := partition.MustNew(assign, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fm.Refine(h, p, fm.Options{MinFrac: 0.45})
		if err != nil {
			b.Fatal(err)
		}
		if res.Cut > res.InitialCut {
			b.Fatal("FM worsened the cut")
		}
	}
}
