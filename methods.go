package spectral

// This file is the method registry: one table driving Method.String,
// ParseMethod, option validation, SpectrumSpec and pipeline dispatch, so
// the flat and multilevel paths (and every harness flag help) agree on
// the method set by construction. Adding a method means adding one row.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dprp"
	"repro/internal/graph"
	"repro/internal/melo"
	"repro/internal/multilevel"
	"repro/internal/recbis"
	"repro/internal/resilience"
	"repro/internal/trivec"
)

// methodEntry is one registry row.
type methodEntry struct {
	method Method
	name   string
	// summary is the one-line description the harnesses print in flag
	// help (cmd/melo -method, cmd/inspect -methods).
	summary string
	// run is the method's pipeline.
	run func(pl *pipeline, h *Netlist) (*Partitioning, error)
	// spec reports the reusable-decomposition requirement for the
	// defaulted options (Options.SpectrumSpec).
	spec func(o Options) SpectrumSpec
}

var methodTable = []methodEntry{
	{MELO, "melo", "multiple-eigenvector linear ordering + DP split (paper's method)",
		(*pipeline).partitionMELO, func(o Options) SpectrumSpec {
			return SpectrumSpec{Needed: true, Model: ModelPartitioningSpecific, D: o.D}
		}},
	{SB, "sb", "Fiedler-vector spectral bipartitioning (K = 2)",
		(*pipeline).partitionSB, func(Options) SpectrumSpec {
			return SpectrumSpec{Needed: true, Model: ModelPartitioningSpecific, D: 1}
		}},
	{RSB, "rsb", "recursive spectral bisection, re-eigensolving each subregion",
		(*pipeline).partitionRSB, func(Options) SpectrumSpec { return SpectrumSpec{} }},
	{KP, "kp", "Chan-Schlag-Zien k-eigenvector k-way heuristic",
		(*pipeline).partitionKP, func(o Options) SpectrumSpec {
			return SpectrumSpec{Needed: true, Model: ModelFrankle, D: o.K}
		}},
	{SFC, "sfc", "spacefilling-curve ordering of the spectral embedding",
		(*pipeline).partitionSFC, func(Options) SpectrumSpec {
			return SpectrumSpec{Needed: true, Model: ModelPartitioningSpecific, D: 2}
		}},
	{Placement, "placement", "analytical-placement bipartitioner (K = 2)",
		(*pipeline).partitionPlacement, func(Options) SpectrumSpec { return SpectrumSpec{} }},
	{VKP, "vkp", "direct vector k-partitioning",
		(*pipeline).partitionVKP, func(o Options) SpectrumSpec {
			return SpectrumSpec{Needed: true, Model: ModelPartitioningSpecific, D: o.D}
		}},
	{Barnes, "barnes", "Barnes' transportation-rounded k-way algorithm",
		(*pipeline).partitionBarnes, func(Options) SpectrumSpec { return SpectrumSpec{} }},
	{HL, "hl", "Hendrickson-Leland median splitting (K a power of two)",
		(*pipeline).partitionHL, func(o Options) SpectrumSpec {
			return SpectrumSpec{Needed: true, Model: ModelPartitioningSpecific, D: log2ceil(o.K)}
		}},
	{MultilevelMELO, "mlmelo", "multilevel V-cycle: coarsen, MELO the coarsest, uncoarsen + FM refine",
		(*pipeline).partitionMultilevelMELO, func(Options) SpectrumSpec { return SpectrumSpec{} }},
	{RecursiveBisection, "recbis", "recursive bisection on successive eigenvectors of one solve",
		(*pipeline).partitionRecursiveBisection, func(o Options) SpectrumSpec {
			return SpectrumSpec{Needed: true, Model: ModelPartitioningSpecific, D: recbisDepth(o.K)}
		}},
	{TwoVectorTripartition, "trivec", "two-eigenvector 120-degree-sector tripartitioning (K = 3)",
		(*pipeline).partitionTwoVectorTripartition, func(Options) SpectrumSpec {
			return SpectrumSpec{Needed: true, Model: ModelPartitioningSpecific, D: 2}
		}},
}

// methodInfoOf returns the registry row for m, or nil if m is not a
// registered method. Rows are indexed by the iota value, checked once at
// init.
func methodInfoOf(m Method) *methodEntry {
	if m < 0 || int(m) >= len(methodTable) {
		return nil
	}
	return &methodTable[m]
}

func init() {
	for i, e := range methodTable {
		if int(e.method) != i {
			panic("spectral: method registry out of order at " + e.name)
		}
	}
}

// MethodNames lists every registered method name, in Method order —
// the single source the harness flag helps print.
func MethodNames() []string {
	names := make([]string, len(methodTable))
	for i, e := range methodTable {
		names[i] = e.name
	}
	return names
}

// MethodSummary returns a one-line description of the method, or "" for
// an unknown method.
func MethodSummary(m Method) string {
	if info := methodInfoOf(m); info != nil {
		return info.summary
	}
	return ""
}

// methodHelp renders the "melo|sb|…" alternation for error messages and
// flag help.
func methodHelp() string { return strings.Join(MethodNames(), "|") }

// log2ceil returns the smallest d with 2^d >= k.
func log2ceil(k int) int {
	d := 0
	for 1<<uint(d) < k {
		d++
	}
	return d
}

// recbisDepth is the number of non-trivial eigenvectors a
// RecursiveBisection run with k clusters consumes: one per recursion
// level.
func recbisDepth(k int) int {
	d := log2ceil(k)
	if d < 1 {
		d = 1
	}
	return d
}

// partitionMultilevelMELO is the multilevel V-cycle entry: coarsening
// and per-level refinement run in internal/multilevel; the coarsest
// netlist is solved by a nested flat pipeline sharing this run's
// eigensolver policy, so the resilience ladder and worker invariance
// carry over unchanged.
func (pl *pipeline) partitionMultilevelMELO(h *Netlist) (*Partitioning, error) {
	pl.enter(resilience.StageMultilevel)
	o := pl.o
	mo := multilevel.Options{
		K:            o.K,
		Threshold:    o.CoarsenThreshold,
		MaxLevels:    o.MaxLevels,
		RefinePasses: o.RefinePasses,
		MinFrac:      o.MinFrac,
		Model:        graph.PartitioningSpecific,
		Workers:      o.Parallelism,
	}
	solve := func(ctx context.Context, ch *Netlist) (*Partitioning, error) {
		sub := &pipeline{ctx: ctx, root: ctx, o: o, pol: pl.pol, stage: resilience.StageCliqueModel}
		defer sub.closeStage()
		return sub.coarsestMELO(ch)
	}
	p, _, err := multilevel.PartitionCtx(pl.ctx, h, mo, solve)
	return p, err
}

// coarsestMELO is the flat MELO pipeline run on the coarsest netlist of
// a V-cycle. It differs from partitionMELO in one way: coarse modules
// always carry accumulated areas, so the K = 2 split is area-balanced
// (BestBalancedSplitAreas) rather than count-balanced — a count balance
// over coarse modules would say nothing about the fine netlist.
func (pl *pipeline) coarsestMELO(h *Netlist) (*Partitioning, error) {
	g, dec, err := pl.decompose(h, graph.PartitioningSpecific, pl.o.D)
	if err != nil {
		return nil, err
	}
	pl.enter(resilience.StageOrdering)
	mo := melo.NewOptions()
	mo.D = pl.o.D
	mo.Scheme = melo.Scheme(pl.o.Scheme)
	mo.Workers = pl.o.Parallelism
	res, err := melo.OrderCtx(pl.ctx, g, dec, mo)
	if err != nil {
		return nil, err
	}
	pl.enter(resilience.StageSplit)
	if pl.o.K == 2 {
		var split dprp.SplitResult
		if h.HasAreas() {
			split, err = dprp.BestBalancedSplitAreas(h, res.Order, pl.o.MinFrac)
		} else {
			split, err = dprp.BestBalancedSplit(h, res.Order, pl.o.MinFrac)
		}
		if err != nil {
			return nil, err
		}
		return split.Partition, nil
	}
	dp, err := dprp.PartitionCtx(pl.ctx, h, res.Order, dprp.Options{K: pl.o.K})
	if err != nil {
		return nil, err
	}
	return dp.Partition, nil
}

// partitionRecursiveBisection shares the decomposition across all
// recursion levels: level d splits each of its subregions at a quantile
// of eigenvector d+1 (clamped), so K clusters consume ⌈log2 K⌉
// non-trivial eigenvectors from one solve.
func (pl *pipeline) partitionRecursiveBisection(h *Netlist) (*Partitioning, error) {
	_, dec, err := pl.decompose(h, graph.PartitioningSpecific, recbisDepth(pl.o.K))
	if err != nil {
		return nil, err
	}
	pl.enter(resilience.StageSplit)
	return recbis.Partition(dec, pl.o.K)
}

func (pl *pipeline) partitionTwoVectorTripartition(h *Netlist) (*Partitioning, error) {
	if pl.o.K != 3 {
		return nil, fmt.Errorf("spectral: TwoVectorTripartition is a tripartitioner, got K = %d", pl.o.K)
	}
	_, dec, err := pl.decompose(h, graph.PartitioningSpecific, 2)
	if err != nil {
		return nil, err
	}
	pl.enter(resilience.StageSplit)
	return trivec.Partition(h, dec, trivec.Options{Workers: pl.o.Parallelism})
}
