// Package spectral is a from-scratch Go implementation of the spectral
// partitioning system of Alpert, Kahng and Yao, "Spectral Partitioning:
// The More Eigenvectors, The Better" (DAC 1995): the reduction from
// min-cut graph partitioning to vector partitioning, the MELO
// multiple-eigenvector ordering heuristic, and every baseline its
// evaluation compares against (SB, RSB, KP, SFC, an analytical-placement
// bipartitioner, plus FM refinement).
//
// The package is a façade over the internal subsystems; a typical
// pipeline is
//
//	h, _ := spectral.GenerateBenchmark("prim1", 1.0)   // or LoadNetlist
//	p, _ := spectral.Partition(h, spectral.Options{K: 4, Method: spectral.MELO})
//	fmt.Println(spectral.NetCut(h, p), spectral.ScaledCost(h, p))
//
// See the examples/ directory for runnable programs and cmd/experiments
// for the paper's full evaluation.
package spectral

import (
	"fmt"
	"io"

	"repro/internal/barnes"
	"repro/internal/bench"
	"repro/internal/dprp"
	"repro/internal/eigen"
	"repro/internal/fm"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/kp"
	"repro/internal/melo"
	"repro/internal/paraboli"
	"repro/internal/partition"
	"repro/internal/rsb"
	"repro/internal/sb"
	"repro/internal/sfc"
)

// Netlist is a circuit hypergraph: modules connected by multi-pin nets.
type Netlist = hypergraph.Hypergraph

// Partitioning assigns each module to one of K clusters.
type Partitioning = partition.Partition

// Method selects the partitioning algorithm.
type Method int

const (
	// MELO is the paper's multiple-eigenvector linear-ordering heuristic
	// (the default).
	MELO Method = iota
	// SB is spectral bipartitioning from the Fiedler vector (k = 2 only).
	SB
	// RSB is recursive spectral bipartitioning.
	RSB
	// KP is the Chan–Schlag–Zien k-eigenvector spectral k-way heuristic.
	KP
	// SFC orders vertices along a spacefilling curve through the spectral
	// embedding and splits the ordering.
	SFC
	// Placement is the analytical-placement bipartitioner (the PARABOLI
	// substitute; k = 2 only).
	Placement
	// VKP is the direct vector k-partitioning heuristic (the paper's
	// proposed future-work direction; see VectorPartition).
	VKP
	// Barnes is Barnes' transportation-rounded k-way algorithm [7].
	Barnes
	// HL is Hendrickson-Leland median splitting [29]; K must be a power
	// of two.
	HL
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case MELO:
		return "melo"
	case SB:
		return "sb"
	case RSB:
		return "rsb"
	case KP:
		return "kp"
	case SFC:
		return "sfc"
	case Placement:
		return "placement"
	case VKP:
		return "vkp"
	case Barnes:
		return "barnes"
	case HL:
		return "hl"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod converts a method name to a Method.
func ParseMethod(s string) (Method, error) {
	for m := MELO; m <= HL; m++ {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("spectral: unknown method %q (want melo|sb|rsb|kp|sfc|placement|vkp|barnes|hl)", s)
}

// Options configures Partition.
type Options struct {
	// K is the number of clusters (default 2).
	K int
	// Method selects the algorithm (default MELO).
	Method Method
	// D is the number of non-trivial eigenvectors for MELO/SFC orderings
	// (default 10, the paper's main setting).
	D int
	// Scheme selects MELO's weighting scheme (0–3; default scheme #1).
	Scheme int
	// MinFrac is the balance bound for bipartitioning splits: the smaller
	// side holds at least this fraction of the modules (default 0.45, the
	// paper's Table 5 setting). Ignored for k > 2, where DP-RP's
	// restricted-partitioning bounds apply.
	MinFrac float64
	// Refine post-processes the partitioning with Fiduccia–Mattheyses
	// passes (the paper's iterative-improvement extension): direct FM
	// for k = 2, pairwise FM sweeps for k > 2.
	Refine bool
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 2
	}
	if o.D == 0 {
		o.D = 10
	}
	if o.MinFrac == 0 {
		o.MinFrac = 0.45
	}
	return o
}

// Partition partitions the netlist into opts.K clusters with the selected
// method.
func Partition(h *Netlist, opts Options) (*Partitioning, error) {
	o := opts.withDefaults()
	if o.K < 2 {
		return nil, fmt.Errorf("spectral: K = %d, want >= 2", o.K)
	}
	var p *Partitioning
	var err error
	switch o.Method {
	case MELO:
		p, err = partitionMELO(h, o)
	case SB:
		p, err = partitionSB(h, o)
	case RSB:
		p, err = rsb.Partition(h, rsb.Options{K: o.K, Model: graph.PartitioningSpecific})
	case KP:
		p, err = partitionKP(h, o)
	case SFC:
		p, err = partitionSFC(h, o)
	case Placement:
		p, err = partitionPlacement(h, o)
	case VKP:
		p, err = VectorPartition(h, o.K, o.D)
	case Barnes:
		p, err = partitionBarnes(h, o)
	case HL:
		p, err = partitionHL(h, o)
	default:
		return nil, fmt.Errorf("spectral: unknown method %v", o.Method)
	}
	if err != nil {
		return nil, err
	}
	if o.Refine {
		if o.K == 2 {
			res, err := fm.Refine(h, p, fm.Options{MinFrac: o.MinFrac})
			if err != nil {
				return nil, err
			}
			p = res.Partition
		} else {
			res, err := fm.RefineKWay(h, p, fm.KWayOptions{})
			if err != nil {
				return nil, err
			}
			p = res.Partition
		}
	}
	return p, nil
}

func decompose(h *Netlist, model graph.CliqueModel, d int) (*graph.Graph, *eigen.Decomposition, error) {
	g, err := graph.FromHypergraph(h, model, 0)
	if err != nil {
		return nil, nil, err
	}
	want := d + 1
	if want > g.N() {
		want = g.N()
	}
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), want)
	if err != nil {
		return nil, nil, err
	}
	return g, dec, nil
}

func partitionMELO(h *Netlist, o Options) (*Partitioning, error) {
	g, dec, err := decompose(h, graph.PartitioningSpecific, o.D)
	if err != nil {
		return nil, err
	}
	mo := melo.NewOptions()
	mo.D = o.D
	mo.Scheme = melo.Scheme(o.Scheme)
	res, err := melo.Order(g, dec, mo)
	if err != nil {
		return nil, err
	}
	if o.K == 2 {
		split, err := dprp.BestBalancedSplit(h, res.Order, o.MinFrac)
		if err != nil {
			return nil, err
		}
		return split.Partition, nil
	}
	dp, err := dprp.Partition(h, res.Order, dprp.Options{K: o.K})
	if err != nil {
		return nil, err
	}
	return dp.Partition, nil
}

func partitionSB(h *Netlist, o Options) (*Partitioning, error) {
	if o.K != 2 {
		return nil, fmt.Errorf("spectral: SB is a bipartitioner, got K = %d", o.K)
	}
	g, dec, err := decompose(h, graph.PartitioningSpecific, 1)
	if err != nil {
		return nil, err
	}
	res, err := sb.Bipartition(h, g, dec, o.MinFrac)
	if err != nil {
		return nil, err
	}
	return res.Partition, nil
}

func partitionKP(h *Netlist, o Options) (*Partitioning, error) {
	_, dec, err := decompose(h, graph.Frankle, o.K)
	if err != nil {
		return nil, err
	}
	return kp.Partition(dec, kp.Options{K: o.K, MinSize: 1})
}

func partitionSFC(h *Netlist, o Options) (*Partitioning, error) {
	_, dec, err := decompose(h, graph.PartitioningSpecific, 2)
	if err != nil {
		return nil, err
	}
	order, err := sfc.Order(dec, sfc.Options{D: 2, Curve: sfc.Hilbert})
	if err != nil {
		return nil, err
	}
	if o.K == 2 {
		split, err := dprp.BestBalancedSplit(h, order, o.MinFrac)
		if err != nil {
			return nil, err
		}
		return split.Partition, nil
	}
	dp, err := dprp.Partition(h, order, dprp.Options{K: o.K})
	if err != nil {
		return nil, err
	}
	return dp.Partition, nil
}

func partitionBarnes(h *Netlist, o Options) (*Partitioning, error) {
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		return nil, err
	}
	return barnes.Partition(g, barnes.Options{K: o.K, SignFlips: true})
}

func partitionHL(h *Netlist, o Options) (*Partitioning, error) {
	d := 0
	for 1<<uint(d) < o.K {
		d++
	}
	if 1<<uint(d) != o.K {
		return nil, fmt.Errorf("spectral: HL requires K to be a power of two, got %d", o.K)
	}
	return HypercubePartition(h, d)
}

func partitionPlacement(h *Netlist, o Options) (*Partitioning, error) {
	if o.K != 2 {
		return nil, fmt.Errorf("spectral: Placement is a bipartitioner, got K = %d", o.K)
	}
	res, err := paraboli.Bipartition(h, paraboli.Options{Model: graph.PartitioningSpecific, MinFrac: o.MinFrac})
	if err != nil {
		return nil, err
	}
	return res.Partition, nil
}

// OrderModules returns a MELO ordering of the netlist's modules — the
// paper's primary artifact, which callers can split with their own rules.
func OrderModules(h *Netlist, d int, scheme int) ([]int, error) {
	if d <= 0 {
		d = 10
	}
	g, dec, err := decompose(h, graph.PartitioningSpecific, d)
	if err != nil {
		return nil, err
	}
	mo := melo.NewOptions()
	mo.D = d
	mo.Scheme = melo.Scheme(scheme)
	res, err := melo.Order(g, dec, mo)
	if err != nil {
		return nil, err
	}
	return res.Order, nil
}

// NetCut returns the number of nets spanning more than one cluster.
func NetCut(h *Netlist, p *Partitioning) int { return partition.NetCut(h, p) }

// ScaledCost returns the Chan–Schlag–Zien Scaled Cost of a partitioning.
func ScaledCost(h *Netlist, p *Partitioning) float64 { return partition.ScaledCost(h, p) }

// RatioCut returns cut/(|C1|·|C2|) for a bipartitioning.
func RatioCut(h *Netlist, p *Partitioning) float64 { return partition.RatioCut(h, p) }

// LoadNetlist parses a netlist in the text interchange format (see
// internal/hypergraph: `net <name> <module> <module> ...` lines).
func LoadNetlist(r io.Reader) (string, *Netlist, error) { return hypergraph.Read(r) }

// SaveNetlist writes a netlist in the text interchange format.
func SaveNetlist(w io.Writer, name string, h *Netlist) error { return hypergraph.Write(w, name, h) }

// LoadHMetis parses a netlist in the hMETIS hypergraph exchange format
// (fmt 0, 1, 10 and 11; module weights become areas).
func LoadHMetis(r io.Reader) (*Netlist, error) { return hypergraph.ReadHMetis(r) }

// SaveHMetis writes a netlist in hMETIS format.
func SaveHMetis(w io.Writer, h *Netlist) error { return hypergraph.WriteHMetis(w, h) }

// GenerateBenchmark synthesizes one of the paper's Table 1 benchmark
// circuits (bm1, prim1, prim2, test02…test06, struct, 19ks, biomed,
// industry2) at the given scale (1 = published size).
func GenerateBenchmark(name string, scale float64) (*Netlist, error) {
	c, err := bench.Lookup(name)
	if err != nil {
		return nil, err
	}
	return bench.Generate(c.Scaled(scale))
}

// Benchmarks lists the names of the registered Table 1 circuits.
func Benchmarks() []string {
	var names []string
	for _, c := range bench.Table1 {
		names = append(names, c.Name)
	}
	return names
}
