// Package spectral is a from-scratch Go implementation of the spectral
// partitioning system of Alpert, Kahng and Yao, "Spectral Partitioning:
// The More Eigenvectors, The Better" (DAC 1995): the reduction from
// min-cut graph partitioning to vector partitioning, the MELO
// multiple-eigenvector ordering heuristic, and every baseline its
// evaluation compares against (SB, RSB, KP, SFC, an analytical-placement
// bipartitioner, plus FM refinement).
//
// The package is a façade over the internal subsystems; a typical
// pipeline is
//
//	h, _ := spectral.GenerateBenchmark("prim1", 1.0)   // or LoadNetlist
//	p, _ := spectral.Partition(h, spectral.Options{K: 4, Method: spectral.MELO})
//	fmt.Println(spectral.NetCut(h, p), spectral.ScaledCost(h, p))
//
// See the examples/ directory for runnable programs and cmd/experiments
// for the paper's full evaluation.
package spectral

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime/debug"
	"sort"

	"repro/internal/barnes"
	"repro/internal/bench"
	"repro/internal/dprp"
	"repro/internal/eigen"
	"repro/internal/fm"
	"repro/internal/graph"
	"repro/internal/hl"
	"repro/internal/hypergraph"
	"repro/internal/kp"
	"repro/internal/linalg"
	"repro/internal/melo"
	"repro/internal/paraboli"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/resilience"
	"repro/internal/rsb"
	"repro/internal/sb"
	"repro/internal/sfc"
	"repro/internal/trace"
)

// Netlist is a circuit hypergraph: modules connected by multi-pin nets.
type Netlist = hypergraph.Hypergraph

// Partitioning assigns each module to one of K clusters.
type Partitioning = partition.Partition

// Method selects the partitioning algorithm.
type Method int

const (
	// MELO is the paper's multiple-eigenvector linear-ordering heuristic
	// (the default).
	MELO Method = iota
	// SB is spectral bipartitioning from the Fiedler vector (k = 2 only).
	SB
	// RSB is recursive spectral bipartitioning.
	RSB
	// KP is the Chan–Schlag–Zien k-eigenvector spectral k-way heuristic.
	KP
	// SFC orders vertices along a spacefilling curve through the spectral
	// embedding and splits the ordering.
	SFC
	// Placement is the analytical-placement bipartitioner (the PARABOLI
	// substitute; k = 2 only).
	Placement
	// VKP is the direct vector k-partitioning heuristic (the paper's
	// proposed future-work direction; see VectorPartition).
	VKP
	// Barnes is Barnes' transportation-rounded k-way algorithm [7].
	Barnes
	// HL is Hendrickson-Leland median splitting [29]; K must be a power
	// of two.
	HL
	// MultilevelMELO runs MELO through the multilevel V-cycle
	// (internal/multilevel): heavy-edge-matching coarsening until the
	// netlist fits under Options.CoarsenThreshold, a flat MELO solve on
	// the coarsest netlist, then level-by-level projection with FM/KL
	// refinement. Same objective as MELO at a fraction of the cost —
	// the only method practical at n ≈ 10⁵–10⁶.
	MultilevelMELO
	// RecursiveBisection recursively splits subregions at quantiles of
	// successive eigenvectors of ONE shared decomposition (NetworKit
	// style; contrast RSB, which re-eigensolves every subregion).
	// Arbitrary K.
	RecursiveBisection
	// TwoVectorTripartition divides the (v2, v3) spectral embedding
	// into three 120° sectors with a grid-searched orientation
	// (Richardson–Mucha–Porter); K must be 3.
	TwoVectorTripartition
)

// String returns the method name.
func (m Method) String() string {
	if info := methodInfoOf(m); info != nil {
		return info.name
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// ParseMethod converts a method name to a Method.
func ParseMethod(s string) (Method, error) {
	for _, info := range methodTable {
		if info.name == s {
			return info.method, nil
		}
	}
	return 0, fmt.Errorf("spectral: unknown method %q (want %s)", s, methodHelp())
}

// Options configures Partition.
type Options struct {
	// K is the number of clusters (default 2).
	K int
	// Method selects the algorithm (default MELO).
	Method Method
	// D is the number of non-trivial eigenvectors for MELO/SFC orderings
	// (default 10, the paper's main setting).
	D int
	// Scheme selects MELO's weighting scheme (0–3; default scheme #1).
	Scheme int
	// MinFrac is the balance bound for bipartitioning splits: the smaller
	// side holds at least this fraction of the modules (default 0.45, the
	// paper's Table 5 setting). Ignored for k > 2, where DP-RP's
	// restricted-partitioning bounds apply.
	MinFrac float64
	// Refine post-processes the partitioning with Fiduccia–Mattheyses
	// passes (the paper's iterative-improvement extension): direct FM
	// for k = 2, pairwise FM sweeps for k > 2.
	Refine bool
	// CoarsenThreshold stops MultilevelMELO's coarsening once the
	// netlist has at most this many modules (default 128; never below
	// 2·K). Ignored by the flat methods.
	CoarsenThreshold int
	// MaxLevels caps MultilevelMELO's coarsening depth (default 32).
	MaxLevels int
	// RefinePasses is MultilevelMELO's FM pass budget per uncoarsening
	// level (default 4; < 0 disables per-level refinement).
	RefinePasses int
	// Parallelism bounds the worker goroutines the numerical kernels
	// (row-sharded MatVec, block Gram–Schmidt reorthogonalization,
	// MELO's candidate scans, per-component eigensolves) may use for
	// this run. 0 selects the process-wide default (parallel.Limit(),
	// normally runtime.NumCPU, settable via spectrald -parallelism); 1
	// forces serial execution. The kernels fix their arithmetic order
	// independently of the worker count, so every setting produces the
	// same partitioning and the same ordering, bit for bit (see
	// DESIGN.md, "The parallelism model").
	Parallelism int
}

// Validate reports whether the options are usable for partitioning h,
// with the same rules Partition applies (K range, D range, scheme,
// MinFrac, method). Callers that queue work asynchronously — like the
// spectrald job pool — use it to reject bad requests at submission
// time instead of failing the job later.
func (o Options) Validate(h *Netlist) error {
	if err := ValidateNetlist(h); err != nil {
		return err
	}
	return validateOptions(h, o, o.withDefaults())
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 2
	}
	if o.D == 0 {
		o.D = 10
	}
	if o.MinFrac == 0 {
		o.MinFrac = 0.45
	}
	return o
}

// Partition partitions the netlist into opts.K clusters with the selected
// method.
func Partition(h *Netlist, opts Options) (*Partitioning, error) {
	return PartitionCtx(context.Background(), h, opts)
}

// PartitionCtx is Partition with cooperative cancellation: a cancelled
// or expired ctx aborts the pipeline at the next iteration boundary of
// whatever stage is running (eigensolver step, ordering insertion, DP
// column) and returns ctx.Err() unwrapped, so errors.Is(err,
// context.Canceled) and errors.Is(err, context.DeadlineExceeded) work
// directly.
//
// Any other failure is returned as a *PipelineError attributing the
// fault to its pipeline stage; panics in any stage are recovered into
// the same shape. Eigensolves run under the resilience retry ladder
// (seed restart → Krylov-cap escalation → dense fallback → eigenvector
// degradation; see internal/resilience), so a struggling solve degrades
// before it fails. Whatever path was taken, a nil error guarantees the
// returned partitioning is a complete, in-range K-way assignment.
func PartitionCtx(ctx context.Context, h *Netlist, opts Options) (*Partitioning, error) {
	return partitionCtxWithPolicy(ctx, h, opts, resilience.EigenPolicy{})
}

// partitionCtxWithPolicy is the pipeline entry behind PartitionCtx;
// tests inject an EigenPolicy carrying a FaultPlan to force specific
// ladder rungs end to end.
func partitionCtxWithPolicy(ctx context.Context, h *Netlist, opts Options, pol resilience.EigenPolicy) (_ *Partitioning, retErr error) {
	o := opts.withDefaults()
	if err := ValidateNetlist(h); err != nil {
		return nil, &PipelineError{Stage: string(resilience.StageValidate), Method: o.Method, Err: err}
	}
	if err := validateOptions(h, opts, o); err != nil {
		return nil, &PipelineError{Stage: string(resilience.StageValidate), Method: o.Method, Err: err}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, rspan := trace.Start(ctx, "partition",
		trace.Str("method", o.Method.String()), trace.Int("k", o.K),
		trace.Int("d", o.D), trace.Int("n", h.NumModules()))
	pl := &pipeline{ctx: ctx, root: ctx, o: o, pol: pol, stage: resilience.StageCliqueModel}
	defer func() {
		pl.closeStage()
		if retErr != nil {
			rspan.Annotate(trace.Str("error", retErr.Error()))
		}
		rspan.End()
	}()
	p, err := pl.run(h)
	if err != nil {
		return nil, wrapPipelineErr(o.Method, pl.stage, err)
	}
	if err := checkPartitioning(h, p, o.K); err != nil {
		return nil, &PipelineError{Stage: string(pl.stage), Method: o.Method, Err: err}
	}
	return p, nil
}

// pipeline carries one run's context, options and eigensolver policy,
// and tracks the stage currently executing so recovered panics and
// stage-agnostic errors are attributed to the right phase.
type pipeline struct {
	ctx   context.Context
	o     Options
	pol   resilience.EigenPolicy
	stage resilience.Stage
	// root is the context carrying the run's root trace span; each
	// stage span derives from it (stages are siblings, not a chain).
	// span is the currently open stage span, nil when tracing is off.
	root context.Context
	span *trace.Span
	// sp, when non-nil, is a precomputed decomposition offered for
	// reuse; decompose consults it before solving (see
	// PartitionWithSpectrum).
	sp *Spectrum
}

// enter advances the pipeline to stage s: the previous stage's span
// ends and a new sibling span named after s opens under the root span.
// pl.ctx is rebased onto the new span so work inside the stage nests
// its own spans correctly.
func (pl *pipeline) enter(s resilience.Stage) {
	pl.stage = s
	pl.span.End()
	if pl.root != nil {
		pl.ctx, pl.span = trace.Start(pl.root, string(s))
	}
}

// closeStage ends the last open stage span (End is nil-safe and
// idempotent).
func (pl *pipeline) closeStage() { pl.span.End() }

// workers resolves the run's worker budget from Options.Parallelism
// (0 = process default).
func (pl *pipeline) workers() int { return parallel.Workers(pl.o.Parallelism) }

// eigenPolicy returns the run's eigensolver policy with the worker
// budget filled in. A policy injected with an explicit Workers value
// (tests) wins over the option.
func (pl *pipeline) eigenPolicy(workers int) resilience.EigenPolicy {
	pol := pl.pol
	if pol.Workers == 0 {
		pol.Workers = workers
	}
	return pol
}

// protect runs fn, converting a panic into a *PipelineError carrying the
// stage that was executing and the recovery stack.
func (pl *pipeline) protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PipelineError{
				Stage:    string(pl.stage),
				Method:   pl.o.Method,
				Err:      fmt.Errorf("panic: %v", r),
				Panicked: true,
				Stack:    debug.Stack(),
			}
		}
	}()
	return fn()
}

func (pl *pipeline) run(h *Netlist) (*Partitioning, error) {
	var p *Partitioning
	err := pl.protect(func() error {
		var err error
		p, err = pl.dispatch(h)
		if err != nil {
			return err
		}
		if pl.o.Refine {
			pl.enter(resilience.StageRefine)
			if pl.o.K == 2 {
				res, err := fm.Refine(h, p, fm.Options{MinFrac: pl.o.MinFrac})
				if err != nil {
					return err
				}
				p = res.Partition
			} else {
				res, err := fm.RefineKWay(h, p, fm.KWayOptions{})
				if err != nil {
					return err
				}
				p = res.Partition
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// dispatch routes the run to its method's pipeline via the method
// registry (methods.go) — the single dispatch point shared by the flat
// and multilevel paths.
func (pl *pipeline) dispatch(h *Netlist) (*Partitioning, error) {
	info := methodInfoOf(pl.o.Method)
	if info == nil {
		return nil, fmt.Errorf("spectral: unknown method %v", pl.o.Method)
	}
	return info.run(pl, h)
}

func (pl *pipeline) partitionRSB(h *Netlist) (*Partitioning, error) {
	pl.enter(resilience.StageSplit)
	return rsb.PartitionCtx(pl.ctx, h, rsb.Options{K: pl.o.K, Model: graph.PartitioningSpecific})
}

// decompose is the context-free decomposition used by the extension
// entry points (extensions.go); it shares the resilience ladder and
// per-component handling with the main pipeline.
func decompose(h *Netlist, model graph.CliqueModel, d int) (*graph.Graph, *eigen.Decomposition, error) {
	ctx := context.Background()
	pl := &pipeline{ctx: ctx, root: ctx, o: Options{}.withDefaults(), stage: resilience.StageCliqueModel}
	defer pl.closeStage()
	return pl.decompose(h, model, d)
}

// decompose builds the clique-model graph and its d+1 smallest Laplacian
// eigenpairs via the resilience ladder, handling disconnected graphs per
// component. A precomputed spectrum on the pipeline that covers (model,
// d) is reused instead — no graph build, no eigensolve; an insufficient
// or mismatched spectrum is ignored and the full path runs.
func (pl *pipeline) decompose(h *Netlist, model graph.CliqueModel, d int) (*graph.Graph, *eigen.Decomposition, error) {
	want := d + 1
	if want > h.NumModules() {
		want = h.NumModules()
	}
	if pl.sp.satisfies(h.NumModules(), model, want) {
		trace.Add(pl.ctx, "spectrum.reuse", 1)
		dec, err := pl.sp.dec.Truncate(want)
		if err != nil {
			return nil, nil, err
		}
		return pl.sp.g, dec, nil
	}
	pl.enter(resilience.StageCliqueModel)
	g, err := graph.FromHypergraph(h, model, 0)
	if err != nil {
		return nil, nil, err
	}
	pl.enter(resilience.StageEigen)
	dec, err := pl.solveComponents(g, want)
	if err != nil {
		return nil, nil, err
	}
	return g, dec, nil
}

// solveComponents runs the eigensolver ladder on g's Laplacian. A
// disconnected graph is solved per component and the eigenpairs merged
// by ascending eigenvalue — exact, because a disconnected Laplacian is
// block-diagonal so its spectrum is the union of the component spectra.
// This also keeps Lanczos away from the degenerate zero eigenvalue of
// multiplicity = #components, its worst case.
//
// Components are solved concurrently under the run's worker budget,
// splitting the budget between component-level concurrency and the
// kernels inside each solve. Each solve is worker-invariant and the
// results are merged in component order, so the decomposition is the
// same at every parallelism level.
func (pl *pipeline) solveComponents(g *graph.Graph, want int) (*eigen.Decomposition, error) {
	comps := g.Components()
	workers := pl.workers()
	if len(comps) <= 1 {
		sol, err := resilience.SolveEigen(pl.ctx, g.Laplacian(), want, pl.eigenPolicy(workers))
		if err != nil {
			return nil, err
		}
		return sol.Dec, nil
	}
	conc := workers
	if conc > len(comps) {
		conc = len(comps)
	}
	inner := workers / conc
	if inner < 1 {
		inner = 1
	}
	pol := pl.eigenPolicy(inner)
	type pair struct {
		val  float64
		vec  []float64 // component-local entries
		back []int     // component-local index -> original vertex
	}
	type compOut struct {
		pairs []pair
		err   error
	}
	outs := make([]compOut, len(comps))
	tasks := make([]func(), len(comps))
	for ci := range comps {
		ci := ci
		comp := comps[ci]
		tasks[ci] = func() {
			if err := pl.ctx.Err(); err != nil {
				outs[ci].err = err
				return
			}
			if len(comp) == 1 {
				outs[ci].pairs = []pair{{val: 0, vec: []float64{1}, back: comp}}
				return
			}
			sub, back := g.Induce(comp)
			cw := want
			if cw > len(comp) {
				cw = len(comp)
			}
			sol, err := resilience.SolveEigen(pl.ctx, sub.Laplacian(), cw, pol)
			if err != nil {
				outs[ci].err = err
				return
			}
			ps := make([]pair, sol.Dec.D())
			for j := 0; j < sol.Dec.D(); j++ {
				ps[j] = pair{val: sol.Dec.Values[j], vec: sol.Dec.Vector(j), back: back}
			}
			outs[ci].pairs = ps
		}
	}
	parallel.Do(conc, tasks...)
	var pairs []pair
	for _, out := range outs { // first failing component (in order) wins
		if out.err != nil {
			return nil, out.err
		}
		pairs = append(pairs, out.pairs...)
	}
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].val < pairs[b].val })
	if len(pairs) > want {
		pairs = pairs[:want]
	}
	vals := make([]float64, len(pairs))
	vecs := linalg.NewDense(g.N(), len(pairs))
	for j, pr := range pairs {
		vals[j] = pr.val
		for i, orig := range pr.back {
			vecs.Set(orig, j, pr.vec[i])
		}
	}
	return &eigen.Decomposition{Values: vals, Vectors: vecs}, nil
}

func (pl *pipeline) partitionMELO(h *Netlist) (*Partitioning, error) {
	g, dec, err := pl.decompose(h, graph.PartitioningSpecific, pl.o.D)
	if err != nil {
		return nil, err
	}
	pl.enter(resilience.StageOrdering)
	mo := melo.NewOptions()
	mo.D = pl.o.D
	mo.Scheme = melo.Scheme(pl.o.Scheme)
	mo.Workers = pl.o.Parallelism
	res, err := melo.OrderCtx(pl.ctx, g, dec, mo)
	if err != nil {
		return nil, err
	}
	pl.enter(resilience.StageSplit)
	if pl.o.K == 2 {
		split, err := dprp.BestBalancedSplit(h, res.Order, pl.o.MinFrac)
		if err != nil {
			return nil, err
		}
		return split.Partition, nil
	}
	dp, err := dprp.PartitionCtx(pl.ctx, h, res.Order, dprp.Options{K: pl.o.K})
	if err != nil {
		return nil, err
	}
	return dp.Partition, nil
}

func (pl *pipeline) partitionSB(h *Netlist) (*Partitioning, error) {
	if pl.o.K != 2 {
		return nil, fmt.Errorf("spectral: SB is a bipartitioner, got K = %d", pl.o.K)
	}
	g, dec, err := pl.decompose(h, graph.PartitioningSpecific, 1)
	if err != nil {
		return nil, err
	}
	pl.enter(resilience.StageSplit)
	res, err := sb.Bipartition(h, g, dec, pl.o.MinFrac)
	if err != nil {
		return nil, err
	}
	return res.Partition, nil
}

func (pl *pipeline) partitionKP(h *Netlist) (*Partitioning, error) {
	_, dec, err := pl.decompose(h, graph.Frankle, pl.o.K)
	if err != nil {
		return nil, err
	}
	pl.enter(resilience.StageSplit)
	ko := kp.Options{K: pl.o.K, MinSize: 1}
	if h.HasAreas() {
		// Heterogeneous areas: repair against the restricted-partitioning
		// area floor (the same A/(2k) the DP splitter uses) instead of
		// module counts.
		areas := make([]float64, h.NumModules())
		for i := range areas {
			areas[i] = h.Area(i)
		}
		ko.Areas = areas
		ko.MinArea, _ = dprp.AreaBounds(h.TotalArea(), pl.o.K)
	}
	return kp.Partition(dec, ko)
}

func (pl *pipeline) partitionSFC(h *Netlist) (*Partitioning, error) {
	_, dec, err := pl.decompose(h, graph.PartitioningSpecific, 2)
	if err != nil {
		return nil, err
	}
	pl.enter(resilience.StageOrdering)
	order, err := sfc.Order(dec, sfc.Options{D: 2, Curve: sfc.Hilbert})
	if err != nil {
		return nil, err
	}
	pl.enter(resilience.StageSplit)
	if pl.o.K == 2 {
		split, err := dprp.BestBalancedSplit(h, order, pl.o.MinFrac)
		if err != nil {
			return nil, err
		}
		return split.Partition, nil
	}
	dp, err := dprp.PartitionCtx(pl.ctx, h, order, dprp.Options{K: pl.o.K})
	if err != nil {
		return nil, err
	}
	return dp.Partition, nil
}

func (pl *pipeline) partitionBarnes(h *Netlist) (*Partitioning, error) {
	pl.enter(resilience.StageCliqueModel)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		return nil, err
	}
	pl.enter(resilience.StageSplit)
	return barnes.Partition(g, barnes.Options{K: pl.o.K, SignFlips: true})
}

func (pl *pipeline) partitionHL(h *Netlist) (*Partitioning, error) {
	d := 0
	for 1<<uint(d) < pl.o.K {
		d++
	}
	if 1<<uint(d) != pl.o.K {
		return nil, fmt.Errorf("spectral: HL requires K to be a power of two, got %d", pl.o.K)
	}
	_, dec, err := pl.decompose(h, graph.PartitioningSpecific, d)
	if err != nil {
		return nil, err
	}
	pl.enter(resilience.StageSplit)
	return hl.Partition(dec, d)
}

func (pl *pipeline) partitionVKP(h *Netlist) (*Partitioning, error) {
	g, dec, err := pl.decompose(h, graph.PartitioningSpecific, pl.o.D)
	if err != nil {
		return nil, err
	}
	pl.enter(resilience.StageSplit)
	return vectorPartitionFrom(g, dec, pl.o.K, pl.o.D)
}

func (pl *pipeline) partitionPlacement(h *Netlist) (*Partitioning, error) {
	if pl.o.K != 2 {
		return nil, fmt.Errorf("spectral: Placement is a bipartitioner, got K = %d", pl.o.K)
	}
	pl.enter(resilience.StageSplit)
	res, err := paraboli.BipartitionCtx(pl.ctx, h, paraboli.Options{Model: graph.PartitioningSpecific, MinFrac: pl.o.MinFrac})
	if err != nil {
		return nil, err
	}
	return res.Partition, nil
}

// OrderModules returns a MELO ordering of the netlist's modules — the
// paper's primary artifact, which callers can split with their own rules.
func OrderModules(h *Netlist, d int, scheme int) ([]int, error) {
	return OrderModulesCtx(context.Background(), h, d, scheme)
}

// OrderModulesCtx is OrderModules with cooperative cancellation and the
// same hardening as PartitionCtx: input validation, the eigensolver
// resilience ladder, per-component solves on disconnected netlists, and
// panic recovery into *PipelineError. Context errors pass through
// unwrapped.
func OrderModulesCtx(ctx context.Context, h *Netlist, d int, scheme int) ([]int, error) {
	return orderModulesCtx(ctx, h, nil, d, scheme, resilience.EigenPolicy{})
}

// orderModulesCtx is the ordering entry behind OrderModulesCtx and
// OrderModulesWithSpectrum: an optional precomputed spectrum and an
// injectable eigensolver policy for tests.
func orderModulesCtx(ctx context.Context, h *Netlist, sp *Spectrum, d int, scheme int, pol resilience.EigenPolicy) (_ []int, retErr error) {
	if d <= 0 {
		d = 10
	}
	if err := ValidateNetlist(h); err != nil {
		return nil, &PipelineError{Stage: string(resilience.StageValidate), Method: MELO, Err: err}
	}
	if scheme < 0 || scheme > 3 {
		return nil, &PipelineError{Stage: string(resilience.StageValidate), Method: MELO, Err: fmt.Errorf("spectral: Scheme = %d, want 0..3", scheme)}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, rspan := trace.Start(ctx, "order",
		trace.Int("d", d), trace.Int("scheme", scheme), trace.Int("n", h.NumModules()))
	pl := &pipeline{ctx: ctx, root: ctx, o: Options{K: 2, Method: MELO, D: d, Scheme: scheme}.withDefaults(), pol: pol, sp: sp, stage: resilience.StageCliqueModel}
	defer func() {
		pl.closeStage()
		if retErr != nil {
			rspan.Annotate(trace.Str("error", retErr.Error()))
		}
		rspan.End()
	}()
	var order []int
	err := pl.protect(func() error {
		g, dec, err := pl.decompose(h, graph.PartitioningSpecific, d)
		if err != nil {
			return err
		}
		pl.enter(resilience.StageOrdering)
		mo := melo.NewOptions()
		mo.D = d
		mo.Scheme = melo.Scheme(scheme)
		mo.Workers = pl.o.Parallelism
		res, err := melo.OrderCtx(pl.ctx, g, dec, mo)
		if err != nil {
			return err
		}
		order = res.Order
		return nil
	})
	if err != nil {
		return nil, wrapPipelineErr(MELO, pl.stage, err)
	}
	return order, nil
}

// NetCut returns the number of nets spanning more than one cluster.
func NetCut(h *Netlist, p *Partitioning) int { return partition.NetCut(h, p) }

// ScaledCost returns the Chan–Schlag–Zien Scaled Cost of a partitioning.
func ScaledCost(h *Netlist, p *Partitioning) float64 { return partition.ScaledCost(h, p) }

// RatioCut returns cut/(|C1|·|C2|) for a bipartitioning.
func RatioCut(h *Netlist, p *Partitioning) float64 { return partition.RatioCut(h, p) }

// LoadNetlist parses a netlist in the text interchange format (see
// internal/hypergraph: `net <name> <module> <module> ...` lines).
func LoadNetlist(r io.Reader) (string, *Netlist, error) { return hypergraph.Read(r) }

// SaveNetlist writes a netlist in the text interchange format.
func SaveNetlist(w io.Writer, name string, h *Netlist) error { return hypergraph.Write(w, name, h) }

// LoadHMetis parses a netlist in the hMETIS hypergraph exchange format
// (fmt 0, 1, 10 and 11; module weights become areas).
func LoadHMetis(r io.Reader) (*Netlist, error) { return hypergraph.ReadHMetis(r) }

// SaveHMetis writes a netlist in hMETIS format.
func SaveHMetis(w io.Writer, h *Netlist) error { return hypergraph.WriteHMetis(w, h) }

// GenerateBenchmark synthesizes one of the paper's Table 1 benchmark
// circuits (bm1, prim1, prim2, test02…test06, struct, 19ks, biomed,
// industry2) at the given scale (1 = published size).
func GenerateBenchmark(name string, scale float64) (*Netlist, error) {
	return GenerateBenchmarkSeeded(name, scale, 0)
}

// GenerateBenchmarkSeeded is GenerateBenchmark with an explicit seed
// for the generator's random-net draw: distinct seeds give distinct
// reproducible instances with identical published statistics. Seed 0
// selects the canonical instance GenerateBenchmark produces.
func GenerateBenchmarkSeeded(name string, scale float64, seed int64) (*Netlist, error) {
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale <= 0 {
		return nil, fmt.Errorf("spectral: scale = %v, want finite > 0", scale)
	}
	c, err := bench.Lookup(name)
	if err != nil {
		return nil, err
	}
	return bench.GenerateSeeded(c.Scaled(scale), seed)
}

// Benchmarks lists the names of the registered Table 1 circuits.
func Benchmarks() []string {
	var names []string
	for _, c := range bench.Table1 {
		names = append(names, c.Name)
	}
	return names
}
