package spectral

import (
	"context"
	"fmt"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// Warm-start outcomes as reported in WarmInfo.Outcome and counted on
// the tracer as "eigen.warmstart.<outcome>".
const (
	// WarmOutcomeAccepted: the seed's Ritz pairs already satisfied the
	// residual tolerance on the delta netlist's operator; the spectrum
	// was refreshed without running an eigensolve.
	WarmOutcomeAccepted = "accepted"
	// WarmOutcomeSeeded: Lanczos ran, starting from the seed's combined
	// Ritz direction instead of a random vector.
	WarmOutcomeSeeded = "seeded"
	// WarmOutcomeRejected: the residual check (or a structural check —
	// dimension mismatch, non-finite entries, lost orthonormality)
	// rejected the seed and a cold solve ran instead.
	WarmOutcomeRejected = "rejected"
	// WarmOutcomeCold: warm-starting was not attempted (no seed, seed
	// shape mismatch, dense-solve regime, or disconnected netlist).
	WarmOutcomeCold = "cold"
)

// WarmInfo reports how a warm-started decomposition used its seed.
type WarmInfo struct {
	// Outcome is one of the WarmOutcome* constants.
	Outcome string `json:"outcome"`
	// MaxResidual is the largest seed-pair residual ‖A v − θ v‖ against
	// the new operator, and Scale the ‖A‖ estimate the acceptance
	// threshold tol·Scale was relative to. Both are 0 when the seed was
	// never evaluated (Outcome "cold").
	MaxResidual float64 `json:"maxResidual,omitempty"`
	Scale       float64 `json:"scale,omitempty"`
	// Reason explains a rejection or a cold outcome.
	Reason string `json:"reason,omitempty"`
}

// DecomposeWarm is DecomposeWarmCtxPolicy with a background context and
// the default resilience policy.
func DecomposeWarm(h *Netlist, model Model, d int, seed *Spectrum) (*Spectrum, WarmInfo, error) {
	return DecomposeWarmCtxPolicy(context.Background(), h, model, d, seed, resilience.EigenPolicy{})
}

// DecomposeWarmCtxPolicy computes the spectrum of h like
// DecomposeCtxPolicy, but tries to reuse seed — the cached spectrum of
// a nearby netlist (typically the base a delta was applied to) — before
// paying for a cold eigensolve. Three things can happen, reported in
// WarmInfo:
//
//   - accepted: every seed Ritz pair passes the residual check
//     ‖A v − θ v‖ ≤ tol·scale on h's operator (tol is the resilience
//     policy's tolerance, the same one a cold solve converges under).
//     The refreshed seed IS the answer; no solve runs.
//   - seeded: the seed is a usable subspace but not converged; Lanczos
//     runs with the seed's combined Ritz direction as its starting
//     vector, then falls back to a cold solve if it fails to converge.
//   - rejected/cold: the solve proceeds exactly as DecomposeCtxPolicy.
//
// Every path is deterministic: the result is a pure function of
// (netlist, model, d, seed, policy). The outcome is counted on the
// context's tracer as "eigen.warmstart.<outcome>".
//
// The caller is responsible for passing a seed decomposed from a
// netlist with the same module population under the same model — the
// function verifies shape (module count, model, pair count) and
// numerical fitness, but cannot tell an unrelated same-size netlist
// from a true base (the residual check makes an unrelated seed
// overwhelmingly likely to be rejected, not wrong).
func DecomposeWarmCtxPolicy(ctx context.Context, h *Netlist, model Model, d int, seed *Spectrum, pol resilience.EigenPolicy) (_ *Spectrum, _ WarmInfo, retErr error) {
	if err := ValidateNetlist(h); err != nil {
		return nil, WarmInfo{}, &PipelineError{Stage: string(resilience.StageValidate), Method: MELO, Err: err}
	}
	cm, err := model.clique()
	if err != nil {
		return nil, WarmInfo{}, &PipelineError{Stage: string(resilience.StageValidate), Method: MELO, Err: err}
	}
	if d < 1 {
		return nil, WarmInfo{}, &PipelineError{Stage: string(resilience.StageValidate), Method: MELO, Err: fmt.Errorf("spectral: d = %d, want >= 1", d)}
	}
	if err := ctx.Err(); err != nil {
		return nil, WarmInfo{}, err
	}
	n := h.NumModules()
	want := d + 1
	if want > n {
		want = n
	}
	ctx, rspan := trace.Start(ctx, "decompose.warm",
		trace.Str("model", model.String()), trace.Int("d", d), trace.Int("n", n))
	var info WarmInfo
	defer func() {
		rspan.Annotate(trace.Str("outcome", info.Outcome))
		if retErr != nil {
			rspan.Annotate(trace.Str("error", retErr.Error()))
		}
		rspan.End()
		if info.Outcome != "" {
			trace.Add(ctx, "eigen.warmstart."+info.Outcome, 1)
		}
	}()

	cold := func(reason string) (*Spectrum, WarmInfo, error) {
		if info.Outcome == "" {
			info.Outcome = WarmOutcomeCold
		}
		if info.Reason == "" {
			info.Reason = reason
		}
		sp, err := decomposeCtxWithPolicy(ctx, h, model, d, pol)
		return sp, info, err
	}

	if seed == nil {
		return cold("no seed spectrum")
	}
	if !seed.satisfies(n, cm, want) {
		// A present-but-incompatible seed (wrong module count, model, or
		// too few pairs) is a rejection, not a cold run: the caller asked
		// for a warm start and the seed failed its checks.
		info.Outcome = WarmOutcomeRejected
		return cold("seed spectrum incompatible (module count, model, or pair count)")
	}

	// Evaluate the seed against the new operator. The clique-model graph
	// built here is reused by every later path, so the evaluation's cost
	// beyond the cold path is just d+1 matvecs.
	pl := &pipeline{ctx: ctx, root: ctx, o: Options{D: d}.withDefaults(), pol: pol, stage: resilience.StageCliqueModel}
	defer pl.closeStage()
	var sp *Spectrum
	perr := pl.protect(func() error {
		g, err := graph.FromHypergraph(h, cm, 0)
		if err != nil {
			return err
		}
		tol := pol.Tol
		if tol <= 0 {
			tol = resilience.DefaultTol
		}
		ev := eigen.EvaluateWarmSeed(g.Laplacian(), seed.dec, want, tol)
		info.MaxResidual, info.Scale, info.Reason = ev.MaxResidual, ev.Scale, ev.Reason

		switch ev.Outcome {
		case eigen.WarmAccepted:
			info.Outcome = WarmOutcomeAccepted
			sp = &Spectrum{modules: n, model: cm, g: g, dec: ev.Refreshed}
			return nil
		case eigen.WarmSeeded:
			// A seeded Lanczos only makes sense where a cold solve would
			// iterate: connected graph, sparse regime. Everywhere else the
			// resilience ladder's dense solve is both fast and seed-blind.
			denseN := pol.DenseDirectN
			if denseN <= 0 {
				denseN = resilience.DefaultDenseDirectN
			}
			if n <= denseN || want > n/3 || len(g.Components()) > 1 {
				info.Reason = "seeded regime not applicable (dense or disconnected)"
				return errWarmFallthrough
			}
			seedID := pol.BaseSeed
			if seedID == 0 {
				seedID = 1
			}
			pl.enter(resilience.StageEigen)
			dec, lerr := eigen.LanczosCtx(pl.ctx, g.Laplacian(), want, &eigen.LanczosOptions{
				Tol:           tol,
				Seed:          seedID,
				Workers:       pl.workers(),
				InitialVector: ev.Start,
			})
			if lerr != nil {
				if resilience.IsContextError(lerr) {
					return lerr
				}
				info.Reason = fmt.Sprintf("seeded solve failed: %v", lerr)
				return errWarmFallthrough
			}
			info.Outcome = WarmOutcomeSeeded
			sp = &Spectrum{modules: n, model: cm, g: g, dec: dec}
			return nil
		default:
			info.Outcome = WarmOutcomeRejected
			return errWarmFallthrough
		}
	})
	switch {
	case perr == nil:
		return sp, info, nil
	case perr == errWarmFallthrough:
		if info.Outcome == "" || info.Outcome == WarmOutcomeSeeded {
			info.Outcome = WarmOutcomeRejected
		}
		sp, err := decomposeCtxWithPolicy(ctx, h, model, d, pol)
		return sp, info, err
	default:
		return nil, info, wrapPipelineErr(MELO, pl.stage, perr)
	}
}

// errWarmFallthrough is the internal sentinel the warm path returns to
// route into a cold solve without treating the situation as a pipeline
// failure.
var errWarmFallthrough = fmt.Errorf("spectral: warm start fell through to cold solve")
