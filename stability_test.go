package spectral

import (
	"testing"

	"repro/internal/delta"
	"repro/internal/partition"
)

func stabilityNetlist(t *testing.T) *Netlist {
	t.Helper()
	h, err := GenerateBenchmarkSeeded("prim1", 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestPartitionStabilityIdentity(t *testing.T) {
	h := stabilityNetlist(t)
	p, err := Partition(h, Options{K: 2, D: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := PartitionStability(h, h, p, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.MovedModules != 0 || s.MovedFrac != 0 {
		t.Fatalf("identical partitions moved %d modules", s.MovedModules)
	}
	if s.BaseCut != s.NewCut || s.CutDelta != 0 {
		t.Fatalf("identical partitions have cut delta %d", s.CutDelta)
	}
	if s.BaseCut != NetCut(h, p) {
		t.Fatalf("BaseCut %d != NetCut %d", s.BaseCut, NetCut(h, p))
	}
}

// TestPartitionStabilityLabelInvariance: relabeling clusters is not
// movement — the alignment must absorb any permutation of labels.
func TestPartitionStabilityLabelInvariance(t *testing.T) {
	h := stabilityNetlist(t)
	p, err := Partition(h, Options{K: 4, D: 6})
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{2, 3, 1, 0}
	relabeled := make([]int, len(p.Assign))
	for i, a := range p.Assign {
		relabeled[i] = perm[a]
	}
	q := partition.MustNew(relabeled, 4)
	s, err := PartitionStability(h, h, p, q)
	if err != nil {
		t.Fatal(err)
	}
	if s.MovedModules != 0 {
		t.Fatalf("pure relabeling counted as %d moves", s.MovedModules)
	}
}

func TestPartitionStabilityCountsMoves(t *testing.T) {
	h := stabilityNetlist(t)
	p, err := Partition(h, Options{K: 2, D: 4})
	if err != nil {
		t.Fatal(err)
	}
	moved := append([]int(nil), p.Assign...)
	// Move three modules across and flip all labels: alignment must see
	// exactly 3 moves.
	for _, m := range []int{0, 5, 9} {
		moved[m] = 1 - moved[m]
	}
	for i := range moved {
		moved[i] = 1 - moved[i]
	}
	q := partition.MustNew(moved, 2)
	s, err := PartitionStability(h, h, p, q)
	if err != nil {
		t.Fatal(err)
	}
	if s.MovedModules != 3 {
		t.Fatalf("moved = %d, want 3", s.MovedModules)
	}
	if want := 3.0 / float64(len(moved)); s.MovedFrac != want {
		t.Fatalf("movedFrac = %v, want %v", s.MovedFrac, want)
	}
}

// TestPartitionStabilityAcrossDelta: the intended use — base partition
// vs the partition of a delta netlist; cuts are computed on the
// respective netlists.
func TestPartitionStabilityAcrossDelta(t *testing.T) {
	base := stabilityNetlist(t)
	mut, _, err := delta.Apply(base, &delta.Delta{
		AddNets: []delta.NetChange{{Name: "eco", Modules: []int{0, base.NumModules() - 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 2, D: 4}
	pb, err := Partition(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := Partition(mut, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := PartitionStability(base, mut, pb, pm)
	if err != nil {
		t.Fatal(err)
	}
	if s.BaseCut != NetCut(base, pb) || s.NewCut != NetCut(mut, pm) {
		t.Fatalf("cuts not recomputed on the right netlists: %+v", s)
	}
	if s.CutDelta != s.NewCut-s.BaseCut {
		t.Fatalf("cut delta inconsistent: %+v", s)
	}
	if s.MovedModules < 0 || s.MovedModules > base.NumModules() {
		t.Fatalf("implausible moved count %d", s.MovedModules)
	}
}

func TestPartitionStabilityErrors(t *testing.T) {
	h := stabilityNetlist(t)
	p, err := Partition(h, Options{K: 2, D: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PartitionStability(nil, h, p, p); err == nil {
		t.Fatal("nil netlist accepted")
	}
	if _, err := PartitionStability(h, h, p, nil); err == nil {
		t.Fatal("nil partition accepted")
	}
	short := partition.MustNew([]int{0, 1}, 2)
	if _, err := PartitionStability(h, h, p, short); err == nil {
		t.Fatal("mismatched module counts accepted")
	}
}

func TestMaxAssignmentExact(t *testing.T) {
	// Known 3×3 assignment: optimum picks 9+7+8 = 24 (diag would be 18).
	w := [][]int{
		{5, 9, 4},
		{7, 6, 5},
		{1, 2, 8},
	}
	if got := maxAssignment(w); got != 24 {
		t.Fatalf("maxAssignment = %d, want 24", got)
	}
}
