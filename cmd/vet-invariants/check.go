package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// defaultPackages are the deterministic kernel directories; see the
// package comment for why they may not import "time".
var defaultPackages = []string{
	"internal/eigen",
	"internal/melo",
	"internal/dprp",
	"internal/parallel",
}

// checkTimeImports parses every non-test .go file directly inside the
// given package directories (imports only — bodies are never typed or
// compiled) and returns one violation string per "time" import, sorted.
// A listed directory that does not exist is an error: a silently
// skipped package is a silently dead invariant.
func checkTimeImports(root string, pkgDirs []string) ([]string, error) {
	fset := token.NewFileSet()
	var violations []string
	for _, dir := range pkgDirs {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		abs := filepath.Join(root, dir)
		entries, err := os.ReadDir(abs)
		if err != nil {
			return nil, fmt.Errorf("package %s: %w", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(abs, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if p == "time" {
					pos := fset.Position(imp.Path.Pos())
					violations = append(violations, fmt.Sprintf(
						"%s imports %q at line %d", filepath.Join(dir, name), p, pos.Line))
				}
			}
		}
	}
	sort.Strings(violations)
	return violations, nil
}
