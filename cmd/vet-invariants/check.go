package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// defaultPackages are the deterministic kernel directories; see the
// package comment for why they may not import "time".
var defaultPackages = []string{
	"internal/eigen",
	"internal/melo",
	"internal/dprp",
	"internal/parallel",
	"internal/coarsen",
	"internal/multilevel",
}

// defaultDaemonPackages are the long-running daemon layers plus the
// multilevel kernel packages; see the package comment for why they may
// not call os.Exit or log.Fatal.
var defaultDaemonPackages = []string{
	"internal/jobs",
	"internal/server",
	"internal/journal",
	"internal/specstore",
	"internal/shard",
	"internal/coarsen",
	"internal/multilevel",
}

// checkTimeImports parses every non-test .go file directly inside the
// given package directories (imports only — bodies are never typed or
// compiled) and returns one violation string per "time" import, sorted.
// A listed directory that does not exist is an error: a silently
// skipped package is a silently dead invariant.
func checkTimeImports(root string, pkgDirs []string) ([]string, error) {
	fset := token.NewFileSet()
	var violations []string
	for _, dir := range pkgDirs {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		abs := filepath.Join(root, dir)
		entries, err := os.ReadDir(abs)
		if err != nil {
			return nil, fmt.Errorf("package %s: %w", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(abs, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if p == "time" {
					pos := fset.Position(imp.Path.Pos())
					violations = append(violations, fmt.Sprintf(
						"%s imports %q at line %d", filepath.Join(dir, name), p, pos.Line))
				}
			}
		}
	}
	sort.Strings(violations)
	return violations, nil
}

// checkFatalCalls parses every non-test .go file directly inside the
// given package directories and returns one violation per os.Exit or
// log.Fatal/Fatalf/Fatalln call, sorted. The daemon layers must fail
// jobs, return errors or log-and-continue — a process kill buried in a
// library bypasses journal flushing, connection draining and the
// crash-safety contract the journal exists to uphold. Renamed imports
// are followed; test files are exempt.
func checkFatalCalls(root string, pkgDirs []string) ([]string, error) {
	fset := token.NewFileSet()
	var violations []string
	for _, dir := range pkgDirs {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		abs := filepath.Join(root, dir)
		entries, err := os.ReadDir(abs)
		if err != nil {
			return nil, fmt.Errorf("package %s: %w", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(abs, name)
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return nil, err
			}
			// Local names under which "os" and "log" are imported.
			pkgNames := make(map[string]string)
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil || (p != "os" && p != "log") {
					continue
				}
				local := p
				if imp.Name != nil {
					if imp.Name.Name == "_" || imp.Name.Name == "." {
						continue
					}
					local = imp.Name.Name
				}
				pkgNames[local] = p
			}
			if len(pkgNames) == 0 {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				p, ok := pkgNames[id.Name]
				if !ok {
					return true
				}
				fn := sel.Sel.Name
				if (p == "os" && fn == "Exit") || (p == "log" && strings.HasPrefix(fn, "Fatal")) {
					pos := fset.Position(call.Pos())
					violations = append(violations, fmt.Sprintf(
						"%s calls %s.%s at line %d", filepath.Join(dir, name), p, fn, pos.Line))
				}
				return true
			})
		}
	}
	sort.Strings(violations)
	return violations, nil
}
