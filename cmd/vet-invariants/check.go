package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// defaultPackages are the deterministic kernel directories; see the
// package comment for why they may not import "time".
var defaultPackages = []string{
	"internal/eigen",
	"internal/melo",
	"internal/dprp",
	"internal/parallel",
	"internal/coarsen",
	"internal/multilevel",
}

// defaultDaemonPackages are the long-running daemon layers plus the
// multilevel kernel packages; see the package comment for why they may
// not call os.Exit or log.Fatal.
var defaultDaemonPackages = []string{
	"internal/jobs",
	"internal/server",
	"internal/journal",
	"internal/specstore",
	"internal/shard",
	"internal/coarsen",
	"internal/multilevel",
}

// defaultArenaPackages are the packages whose solvers draw scratch
// vectors from a linalg.Arena; see the package comment for why an arena
// slice must never be returned to a caller.
var defaultArenaPackages = []string{
	"internal/eigen",
}

// checkTimeImports parses every non-test .go file directly inside the
// given package directories (imports only — bodies are never typed or
// compiled) and returns one violation string per "time" import, sorted.
// A listed directory that does not exist is an error: a silently
// skipped package is a silently dead invariant.
func checkTimeImports(root string, pkgDirs []string) ([]string, error) {
	fset := token.NewFileSet()
	var violations []string
	for _, dir := range pkgDirs {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		abs := filepath.Join(root, dir)
		entries, err := os.ReadDir(abs)
		if err != nil {
			return nil, fmt.Errorf("package %s: %w", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(abs, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if p == "time" {
					pos := fset.Position(imp.Path.Pos())
					violations = append(violations, fmt.Sprintf(
						"%s imports %q at line %d", filepath.Join(dir, name), p, pos.Line))
				}
			}
		}
	}
	sort.Strings(violations)
	return violations, nil
}

// checkArenaEscapes parses every non-test .go file directly inside the
// given package directories and returns one violation per return
// statement that hands an arena-owned vector to the caller. An arena
// vector is a local assigned from an expression containing a .Vec()
// method call (directly, or through a wrapper like randomUnitInto that
// returns its argument). The arena recycles those buffers on the next
// solve; a caller holding one would see its eigenvectors rewritten
// under it. Escaping positions are the returned expression itself, a
// slice of it, &composite or composite-literal fields — but not call
// arguments, since passing a scratch buffer to a copying helper
// (linalg.CopyVec, ritzPairs) is exactly how results are supposed to
// leave the arena. The check is purely syntactic (no type information),
// so it is a tripwire for the DESIGN.md ownership rule, not an escape
// analysis.
func checkArenaEscapes(root string, pkgDirs []string) ([]string, error) {
	fset := token.NewFileSet()
	var violations []string
	for _, dir := range pkgDirs {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		abs := filepath.Join(root, dir)
		entries, err := os.ReadDir(abs)
		if err != nil {
			return nil, fmt.Errorf("package %s: %w", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(abs, name)
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return nil, err
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				// Locals assigned from an expression containing .Vec().
				arena := make(map[string]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					as, ok := n.(*ast.AssignStmt)
					if !ok || len(as.Lhs) != len(as.Rhs) {
						return true
					}
					for i, rhs := range as.Rhs {
						if !containsVecCall(rhs) {
							continue
						}
						if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
							arena[id.Name] = true
						}
					}
					return true
				})
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					ret, ok := n.(*ast.ReturnStmt)
					if !ok {
						return true
					}
					for _, res := range ret.Results {
						for _, id := range escapingIdents(res) {
							if arena[id.Name] {
								pos := fset.Position(ret.Pos())
								violations = append(violations, fmt.Sprintf(
									"%s returns arena vector %q at line %d", filepath.Join(dir, name), id.Name, pos.Line))
							}
						}
						if callsVec(res) {
							pos := fset.Position(ret.Pos())
							violations = append(violations, fmt.Sprintf(
								"%s returns a fresh .Vec() allocation at line %d", filepath.Join(dir, name), pos.Line))
						}
					}
					return true
				})
			}
		}
	}
	sort.Strings(violations)
	return violations, nil
}

// containsVecCall reports whether the expression tree contains a call
// to a method named Vec (the arena allocation entry point).
func containsVecCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if callIsVec(n) {
			found = true
			return false
		}
		return !found
	})
	return found
}

func callIsVec(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Vec"
}

// escapingIdents collects identifiers that the expression would hand to
// the caller by reference: the expression itself, through slicing,
// address-of, parens, or composite-literal fields. Call arguments are
// deliberately excluded — a call is assumed to copy.
func escapingIdents(e ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		out = append(out, x)
	case *ast.ParenExpr:
		out = append(out, escapingIdents(x.X)...)
	case *ast.SliceExpr:
		out = append(out, escapingIdents(x.X)...)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			out = append(out, escapingIdents(x.X)...)
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				out = append(out, escapingIdents(kv.Value)...)
			} else {
				out = append(out, escapingIdents(el)...)
			}
		}
	}
	return out
}

// callsVec reports whether the expression is itself a .Vec() call in an
// escaping position (same positions as escapingIdents).
func callsVec(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		return callIsVec(x)
	case *ast.ParenExpr:
		return callsVec(x.X)
	case *ast.SliceExpr:
		return callsVec(x.X)
	case *ast.UnaryExpr:
		return x.Op == token.AND && callsVec(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if callsVec(kv.Value) {
					return true
				}
			} else if callsVec(el) {
				return true
			}
		}
	}
	return false
}

// checkFatalCalls parses every non-test .go file directly inside the
// given package directories and returns one violation per os.Exit or
// log.Fatal/Fatalf/Fatalln call, sorted. The daemon layers must fail
// jobs, return errors or log-and-continue — a process kill buried in a
// library bypasses journal flushing, connection draining and the
// crash-safety contract the journal exists to uphold. Renamed imports
// are followed; test files are exempt.
func checkFatalCalls(root string, pkgDirs []string) ([]string, error) {
	fset := token.NewFileSet()
	var violations []string
	for _, dir := range pkgDirs {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		abs := filepath.Join(root, dir)
		entries, err := os.ReadDir(abs)
		if err != nil {
			return nil, fmt.Errorf("package %s: %w", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(abs, name)
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return nil, err
			}
			// Local names under which "os" and "log" are imported.
			pkgNames := make(map[string]string)
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil || (p != "os" && p != "log") {
					continue
				}
				local := p
				if imp.Name != nil {
					if imp.Name.Name == "_" || imp.Name.Name == "." {
						continue
					}
					local = imp.Name.Name
				}
				pkgNames[local] = p
			}
			if len(pkgNames) == 0 {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				p, ok := pkgNames[id.Name]
				if !ok {
					return true
				}
				fn := sel.Sel.Name
				if (p == "os" && fn == "Exit") || (p == "log" && strings.HasPrefix(fn, "Fatal")) {
					pos := fset.Position(call.Pos())
					violations = append(violations, fmt.Sprintf(
						"%s calls %s.%s at line %d", filepath.Join(dir, name), p, fn, pos.Line))
				}
				return true
			})
		}
	}
	sort.Strings(violations)
	return violations, nil
}
