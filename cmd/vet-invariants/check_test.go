package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsDirectTimeImport(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "internal/kernel/clean.go"),
		"package kernel\n\nimport \"math\"\n\nvar _ = math.Pi\n")
	writeFile(t, filepath.Join(root, "internal/kernel/dirty.go"),
		"package kernel\n\nimport \"time\"\n\nvar _ = time.Now\n")

	v, err := checkTimeImports(root, []string{"internal/kernel"})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 {
		t.Fatalf("want 1 violation, got %d: %v", len(v), v)
	}
	if !strings.Contains(v[0], "dirty.go") || !strings.Contains(v[0], `"time"`) {
		t.Fatalf("violation does not name the offending file/import: %q", v[0])
	}
}

func TestTestFilesAreExempt(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "internal/kernel/kernel.go"),
		"package kernel\n")
	writeFile(t, filepath.Join(root, "internal/kernel/kernel_test.go"),
		"package kernel\n\nimport \"time\"\n\nvar _ = time.Now\n")

	v, err := checkTimeImports(root, []string{"internal/kernel"})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("test file should be exempt, got %v", v)
	}
}

func TestGroupedAndNamedImportsDetected(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "internal/kernel/grouped.go"),
		"package kernel\n\nimport (\n\t\"fmt\"\n\tclock \"time\"\n)\n\nvar _ = fmt.Sprint\nvar _ = clock.Now\n")

	v, err := checkTimeImports(root, []string{"internal/kernel"})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 {
		t.Fatalf("renamed import must still be caught, got %v", v)
	}
}

func TestMissingPackageIsAnError(t *testing.T) {
	root := t.TempDir()
	if _, err := checkTimeImports(root, []string{"internal/nonexistent"}); err == nil {
		t.Fatal("missing package directory must fail, not be skipped")
	}
}

func TestRealKernelPackagesAreClean(t *testing.T) {
	// The invariant itself, run against the repository this test lives
	// in: the kernel packages must be clean right now.
	v, err := checkTimeImports("../..", defaultPackages)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("kernel packages import \"time\": %v", v)
	}
}
