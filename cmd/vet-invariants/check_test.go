package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsDirectTimeImport(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "internal/kernel/clean.go"),
		"package kernel\n\nimport \"math\"\n\nvar _ = math.Pi\n")
	writeFile(t, filepath.Join(root, "internal/kernel/dirty.go"),
		"package kernel\n\nimport \"time\"\n\nvar _ = time.Now\n")

	v, err := checkTimeImports(root, []string{"internal/kernel"})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 {
		t.Fatalf("want 1 violation, got %d: %v", len(v), v)
	}
	if !strings.Contains(v[0], "dirty.go") || !strings.Contains(v[0], `"time"`) {
		t.Fatalf("violation does not name the offending file/import: %q", v[0])
	}
}

func TestTestFilesAreExempt(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "internal/kernel/kernel.go"),
		"package kernel\n")
	writeFile(t, filepath.Join(root, "internal/kernel/kernel_test.go"),
		"package kernel\n\nimport \"time\"\n\nvar _ = time.Now\n")

	v, err := checkTimeImports(root, []string{"internal/kernel"})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("test file should be exempt, got %v", v)
	}
}

func TestGroupedAndNamedImportsDetected(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "internal/kernel/grouped.go"),
		"package kernel\n\nimport (\n\t\"fmt\"\n\tclock \"time\"\n)\n\nvar _ = fmt.Sprint\nvar _ = clock.Now\n")

	v, err := checkTimeImports(root, []string{"internal/kernel"})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 {
		t.Fatalf("renamed import must still be caught, got %v", v)
	}
}

func TestMissingPackageIsAnError(t *testing.T) {
	root := t.TempDir()
	if _, err := checkTimeImports(root, []string{"internal/nonexistent"}); err == nil {
		t.Fatal("missing package directory must fail, not be skipped")
	}
}

func TestRealKernelPackagesAreClean(t *testing.T) {
	// The invariant itself, run against the repository this test lives
	// in: the kernel packages must be clean right now.
	v, err := checkTimeImports("../..", defaultPackages)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("kernel packages import \"time\": %v", v)
	}
}

func TestDetectsFatalCalls(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "internal/daemon/clean.go"),
		"package daemon\n\nimport (\n\t\"log\"\n\t\"os\"\n)\n\nfunc ok() {\n\tlog.Printf(\"fine\")\n\t_ = os.Getenv(\"HOME\")\n}\n")
	writeFile(t, filepath.Join(root, "internal/daemon/dirty.go"),
		"package daemon\n\nimport (\n\t\"log\"\n\t\"os\"\n)\n\nfunc bad() {\n\tlog.Fatalf(\"boom\")\n\tlog.Fatal(\"boom\")\n\tlog.Fatalln(\"boom\")\n\tos.Exit(1)\n}\n")

	v, err := checkFatalCalls(root, []string{"internal/daemon"})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 4 {
		t.Fatalf("want 4 violations, got %d: %v", len(v), v)
	}
	for _, viol := range v {
		if !strings.Contains(viol, "dirty.go") {
			t.Errorf("violation names the wrong file: %q", viol)
		}
	}
}

func TestFatalCallsRenamedImportDetected(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "internal/daemon/renamed.go"),
		"package daemon\n\nimport sys \"os\"\n\nfunc bad() { sys.Exit(2) }\n")

	v, err := checkFatalCalls(root, []string{"internal/daemon"})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !strings.Contains(v[0], "os.Exit") {
		t.Fatalf("renamed os import must still be caught, got %v", v)
	}
}

func TestFatalCallsTestFilesExempt(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "internal/daemon/daemon.go"), "package daemon\n")
	writeFile(t, filepath.Join(root, "internal/daemon/daemon_test.go"),
		"package daemon\n\nimport \"os\"\n\nfunc bad() { os.Exit(1) }\n")

	v, err := checkFatalCalls(root, []string{"internal/daemon"})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("test file should be exempt, got %v", v)
	}
}

func TestFatalCallsOtherPackagesIgnored(t *testing.T) {
	// A local type or import named os/log that is not the stdlib
	// package must not trip the check, nor must os.Getenv or log.Print.
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "internal/daemon/lookalike.go"),
		"package daemon\n\nimport myos \"example.com/os\"\n\nfunc ok() { myos.Exit(1) }\n")

	v, err := checkFatalCalls(root, []string{"internal/daemon"})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("non-stdlib lookalike flagged: %v", v)
	}
}

func TestRealDaemonPackagesAreClean(t *testing.T) {
	// The invariant itself, run against the repository this test lives
	// in: the daemon packages must be clean right now.
	v, err := checkFatalCalls("../..", defaultDaemonPackages)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("daemon packages kill the process: %v", v)
	}
}

func TestDetectsArenaEscapes(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "internal/solver/dirty.go"),
		`package solver

type result struct{ Vec []float64 }

func direct(ar arena) []float64 {
	return ar.Vec()
}

func viaLocal(ar arena) []float64 {
	v := ar.Vec()
	fill(v)
	return v
}

func sliced(ar arena, n int) []float64 {
	v := ar.Vec()
	return v[:n]
}

func inStruct(ar arena) *result {
	v := ar.Vec()
	return &result{Vec: v}
}

func viaWrapper(ar arena) []float64 {
	v := seeded(ar.Vec())
	return v
}
`)
	v, err := checkArenaEscapes(root, []string{"internal/solver"})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 5 {
		t.Fatalf("want 5 violations, got %d: %v", len(v), v)
	}
	for _, viol := range v {
		if !strings.Contains(viol, "dirty.go") {
			t.Errorf("violation names the wrong file: %q", viol)
		}
	}
}

func TestArenaCopiesAreClean(t *testing.T) {
	// Results leaving through a copying call (CopyVec, a helper taking
	// the scratch as an argument) are the sanctioned pattern and must
	// not be flagged; neither must ordinary locals.
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "internal/solver/clean.go"),
		`package solver

type result struct{ Vals []float64 }

func solve(ar arena, n int) *result {
	v := ar.Vec()
	fill(v)
	vals := make([]float64, n)
	copy(vals, v)
	ar.Free(v)
	return &result{Vals: vals}
}

func copied(ar arena) []float64 {
	v := ar.Vec()
	return copyVec(v)
}

func unrelated(n int) []float64 {
	v := make([]float64, n)
	return v
}
`)
	v, err := checkArenaEscapes(root, []string{"internal/solver"})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("sanctioned copy-out patterns flagged: %v", v)
	}
}

func TestArenaEscapeTestFilesExempt(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "internal/solver/solver.go"), "package solver\n")
	writeFile(t, filepath.Join(root, "internal/solver/solver_test.go"),
		"package solver\n\nfunc leak(ar arena) []float64 { return ar.Vec() }\n")
	v, err := checkArenaEscapes(root, []string{"internal/solver"})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("test file should be exempt, got %v", v)
	}
}

func TestRealArenaPackagesAreClean(t *testing.T) {
	// The invariant itself, run against the repository this test lives
	// in: internal/eigen must not leak arena scratch right now.
	v, err := checkArenaEscapes("../..", defaultArenaPackages)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("arena packages leak scratch vectors: %v", v)
	}
}
