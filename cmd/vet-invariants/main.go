// Command vet-invariants enforces repository invariants that go vet
// cannot express. Today there is one: the numerical kernel packages
// (internal/eigen, internal/melo, internal/dprp, internal/parallel)
// must not import "time".
//
// The kernels are required to be deterministic and bit-identical at
// every parallelism setting (DESIGN.md, "The parallelism model"), and
// reading the clock is the easiest way to smuggle nondeterminism into
// one — a time-based seed, a duration-based cutoff, a progress
// callback that fires "every 100ms". All timing of kernels belongs to
// the callers and to internal/trace, which wraps the clock once,
// outside the algorithms. Banning the import keeps the boundary
// machine-checked instead of review-checked.
//
// Test files are exempt: a _test.go harness may legitimately time the
// code it drives.
//
// Usage:
//
//	vet-invariants [-root .] [-packages internal/eigen,...]
//
// Exits 1 and lists every offending import when the invariant is
// violated.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		root = flag.String("root", ".", "repository root to scan")
		pkgs = flag.String("packages", strings.Join(defaultPackages, ","),
			"comma-separated package directories that must not import \"time\"")
	)
	flag.Parse()

	violations, err := checkTimeImports(*root, strings.Split(*pkgs, ","))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vet-invariants:", err)
		os.Exit(1)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "vet-invariants:", v)
		}
		fmt.Fprintf(os.Stderr, "vet-invariants: %d violation(s): kernel packages must not read the clock (route timing through internal/trace)\n", len(violations))
		os.Exit(1)
	}
	fmt.Printf("vet-invariants: ok (%s)\n", *pkgs)
}
