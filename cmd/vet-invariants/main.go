// Command vet-invariants enforces repository invariants that go vet
// cannot express.
//
// Invariant 1: the numerical kernel packages (internal/eigen,
// internal/melo, internal/dprp, internal/parallel) must not import
// "time". The kernels are required to be deterministic and
// bit-identical at every parallelism setting (DESIGN.md, "The
// parallelism model"), and reading the clock is the easiest way to
// smuggle nondeterminism into one — a time-based seed, a
// duration-based cutoff, a progress callback that fires "every 100ms".
// All timing of kernels belongs to the callers and to internal/trace,
// which wraps the clock once, outside the algorithms. Banning the
// import keeps the boundary machine-checked instead of review-checked.
//
// Invariant 2: the daemon layers (internal/jobs, internal/server,
// internal/journal) must not call os.Exit or log.Fatal. Those packages
// run inside a long-lived process with a durability contract: a
// process kill buried in a library skips journal flushing, HTTP
// draining and the pool's shutdown path, turning a recoverable error
// into exactly the crash the journal exists to survive. Failures there
// must surface as errors (or failed jobs), with process exit decided
// only by cmd/spectrald's main.
//
// Invariant 3: the arena-backed solver packages (internal/eigen) must
// not return arena-owned vectors. The eigen hot loops draw all their
// n-vector scratch from a linalg.Arena that recycles buffers between
// solves; a returned arena slice would be silently rewritten by the
// next solve. Results must leave through copies (linalg.CopyVec, a
// fresh Dense). The check is syntactic — it flags return statements
// whose value traces to a .Vec() call — so it is a tripwire for the
// DESIGN.md ownership rule, not a full escape analysis.
//
// Test files are exempt from all three: a _test.go harness may
// legitimately time the code it drives or kill its own process.
//
// Usage:
//
//	vet-invariants [-root .] [-packages internal/eigen,...]
//	               [-daemon-packages internal/jobs,...]
//	               [-arena-packages internal/eigen,...]
//
// Exits 1 and lists every offence when an invariant is violated.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		root = flag.String("root", ".", "repository root to scan")
		pkgs = flag.String("packages", strings.Join(defaultPackages, ","),
			"comma-separated package directories that must not import \"time\"")
		daemonPkgs = flag.String("daemon-packages", strings.Join(defaultDaemonPackages, ","),
			"comma-separated package directories that must not call os.Exit or log.Fatal")
		arenaPkgs = flag.String("arena-packages", strings.Join(defaultArenaPackages, ","),
			"comma-separated package directories that must not return arena-owned vectors")
	)
	flag.Parse()

	failed := false
	timeViolations, err := checkTimeImports(*root, strings.Split(*pkgs, ","))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vet-invariants:", err)
		os.Exit(1)
	}
	if len(timeViolations) > 0 {
		for _, v := range timeViolations {
			fmt.Fprintln(os.Stderr, "vet-invariants:", v)
		}
		fmt.Fprintf(os.Stderr, "vet-invariants: %d violation(s): kernel packages must not read the clock (route timing through internal/trace)\n", len(timeViolations))
		failed = true
	}

	fatalViolations, err := checkFatalCalls(*root, strings.Split(*daemonPkgs, ","))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vet-invariants:", err)
		os.Exit(1)
	}
	if len(fatalViolations) > 0 {
		for _, v := range fatalViolations {
			fmt.Fprintln(os.Stderr, "vet-invariants:", v)
		}
		fmt.Fprintf(os.Stderr, "vet-invariants: %d violation(s): daemon packages must return errors, not kill the process (exits belong to cmd/spectrald)\n", len(fatalViolations))
		failed = true
	}

	arenaViolations, err := checkArenaEscapes(*root, strings.Split(*arenaPkgs, ","))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vet-invariants:", err)
		os.Exit(1)
	}
	if len(arenaViolations) > 0 {
		for _, v := range arenaViolations {
			fmt.Fprintln(os.Stderr, "vet-invariants:", v)
		}
		fmt.Fprintf(os.Stderr, "vet-invariants: %d violation(s): arena scratch must not escape via return values (copy results out — see DESIGN.md §10)\n", len(arenaViolations))
		failed = true
	}

	if failed {
		os.Exit(1)
	}
	fmt.Printf("vet-invariants: ok (%s; %s; %s)\n", *pkgs, *daemonPkgs, *arenaPkgs)
}
