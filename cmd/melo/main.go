// Command melo partitions a netlist with any of the repository's
// algorithms and reports the standard metrics.
//
// Usage:
//
//	melo -in circuit.net -k 4                    # MELO, 4-way
//	melo -in circuit.net -k 2 -method sb         # spectral bipartitioning
//	melo -bench prim1 -k 2 -refine               # built-in benchmark + FM
//	netgen -name prim2 | melo -k 10 -method rsb  # from stdin
//
// The output lists one `cluster <name> <id>` line per module followed by
// the cut metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	spectral "repro"
)

// exitDeadline is the exit code for a run aborted by -timeout, distinct
// from ordinary failures (1) and usage errors (2).
const exitDeadline = 3

func main() {
	var (
		in          = flag.String("in", "", "netlist file; default stdin")
		format      = flag.String("format", "text", "input format: text|hmetis")
		benchN      = flag.String("bench", "", "use a built-in benchmark instead of -in")
		scale       = flag.Float64("scale", 1.0, "benchmark scale when -bench is used")
		seed        = flag.Int64("seed", 0, "benchmark instance seed when -bench is used (0 = canonical)")
		k           = flag.Int("k", 2, "number of clusters")
		method      = flag.String("method", "melo", strings.Join(spectral.MethodNames(), "|"))
		listMethods = flag.Bool("methods", false, "list the partitioning methods and exit")
		d           = flag.Int("d", 0, "eigenvectors for MELO orderings (0 = default 10, clamped to the netlist)")
		scheme      = flag.Int("scheme", 0, "MELO weighting scheme (0-3)")
		minFrac     = flag.Float64("minfrac", 0.45, "bipartition balance bound")
		refine      = flag.Bool("refine", false, "FM post-refinement (k=2 only)")
		coarsenTo   = flag.Int("coarsen-threshold", 0, "mlmelo: stop coarsening at this many modules (0 = default 128)")
		maxLevels   = flag.Int("max-levels", 0, "mlmelo: cap on coarsening levels (0 = default 32)")
		refPasses   = flag.Int("refine-passes", 0, "mlmelo: FM passes per uncoarsening level (0 = default 4, negative disables)")
		par         = flag.Int("parallelism", 0, "worker goroutines per numerical kernel (0 = NumCPU; results identical at every setting)")
		quiet       = flag.Bool("quiet", false, "print metrics only, not the assignment")
		timeout     = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	)
	flag.Parse()

	if *listMethods {
		for _, name := range spectral.MethodNames() {
			m, _ := spectral.ParseMethod(name)
			fmt.Printf("%-10s %s\n", name, spectral.MethodSummary(m))
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	h, err := loadInput(*in, *benchN, *scale, *seed, *format)
	if err != nil {
		fatal(err)
	}
	m, err := spectral.ParseMethod(*method)
	if err != nil {
		fatal(err)
	}
	p, err := spectral.PartitionCtx(ctx, h, spectral.Options{
		K: *k, Method: m, D: *d, Scheme: *scheme, MinFrac: *minFrac, Refine: *refine,
		CoarsenThreshold: *coarsenTo, MaxLevels: *maxLevels, RefinePasses: *refPasses,
		Parallelism: *par,
	})
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "melo: timed out after %v; no partitioning was produced (partial pipeline state is discarded — rerun with a larger -timeout or a smaller instance)\n", *timeout)
		os.Exit(exitDeadline)
	}
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		for i, c := range p.Assign {
			fmt.Printf("cluster %s %d\n", h.Names[i], c)
		}
	}
	fmt.Printf("modules=%d nets=%d pins=%d k=%d method=%v\n",
		h.NumModules(), h.NumNets(), h.NumPins(), *k, m)
	fmt.Printf("netcut=%d scaledcost=%.6g sizes=%v\n",
		spectral.NetCut(h, p), spectral.ScaledCost(h, p), p.Sizes())
}

func loadInput(in, benchName string, scale float64, seed int64, format string) (*spectral.Netlist, error) {
	if benchName != "" {
		return spectral.GenerateBenchmarkSeeded(benchName, scale, seed)
	}
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	switch format {
	case "hmetis":
		return spectral.LoadHMetis(r)
	case "text", "":
		_, h, err := spectral.LoadNetlist(r)
		return h, err
	default:
		return nil, fmt.Errorf("unknown format %q (want text|hmetis)", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "melo:", err)
	os.Exit(1)
}
