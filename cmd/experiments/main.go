// Command experiments regenerates the paper's evaluation tables and
// figures on the synthesized benchmark suite.
//
// Usage:
//
//	experiments -all                 # every table and figure, full scale
//	experiments -table 4 -scale 0.3  # one table at reduced scale
//	experiments -figure 1
//	experiments -table 5 -benchmarks prim1,prim2
//
// At -scale 1 the full suite takes minutes (the industry2 circuit has
// 12637 modules and every algorithm runs on it); smaller scales preserve
// the qualitative comparisons and run in seconds.
//
// -trace out.jsonl appends every finished pipeline span as a JSON line;
// -trace-report prints the aggregate summary (per-span p50/p95/max,
// counter totals) to stderr when the run ends. Either flag enables the
// tracer; without them it stays off and costs nothing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	spectral "repro"
	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// exitDeadline is the exit code for a run aborted by -timeout, distinct
// from ordinary failures (1) and usage errors (2).
const exitDeadline = 3

func main() {
	var (
		tableN   = flag.Int("table", 0, "table number to regenerate (1-5)")
		figureN  = flag.Int("figure", 0, "figure number to regenerate (1-2)")
		ext      = flag.Bool("ext", false, "regenerate the extensions comparison table")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		scale    = flag.Float64("scale", 1.0, "benchmark scale factor (0,1]")
		d        = flag.Int("d", 10, "MELO eigenvector count")
		benches  = flag.String("benchmarks", "", "comma-separated benchmark subset (default all)")
		par      = flag.Int("parallelism", 0, "worker goroutines per numerical kernel (0 = NumCPU; results identical at every setting)")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		traceOut = flag.String("trace", "", "append finished spans as JSON lines to this file")
		traceRep = flag.Bool("trace-report", false, "print the trace summary to stderr at exit")
		listM    = flag.Bool("methods", false, "list the partitioning methods the facade accepts and exit")
	)
	flag.Parse()
	parallel.SetLimit(*par)

	if *listM {
		for _, name := range spectral.MethodNames() {
			m, _ := spectral.ParseMethod(name)
			fmt.Printf("%-10s %s\n", name, spectral.MethodSummary(m))
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *traceOut != "" || *traceRep {
		var sinks []trace.Sink
		if *traceOut != "" {
			f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: open trace file: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			sinks = append(sinks, trace.NewJSONWriter(f))
		}
		tracer := trace.New(sinks...)
		// The Lab threads ctx into every facade call, but the parallel
		// kernels report through the process-global fallback.
		trace.SetGlobal(tracer)
		ctx = trace.WithTracer(ctx, tracer)
		if *traceRep {
			defer tracer.WriteReport(os.Stderr)
		}
	}

	cfg := experiments.Config{Ctx: ctx, Out: os.Stdout, Scale: *scale, D: *d}
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
	}
	lab := experiments.NewLab(cfg)

	tables := map[int]func(*experiments.Lab) error{
		1: experiments.Table1,
		2: experiments.Table2,
		3: experiments.Table3,
		4: experiments.Table4,
		5: experiments.Table5,
	}
	figures := map[int]func(*experiments.Lab) error{
		1: experiments.Figure1,
		2: experiments.Figure2,
	}

	run := func(name string, f func(*experiments.Lab) error) {
		if err := f(lab); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "experiments: timed out after %v during %s; tables and figures printed before this point are complete, %s itself is partial or missing\n", *timeout, name, name)
				os.Exit(exitDeadline)
			}
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	switch {
	case *all:
		for i := 1; i <= 5; i++ {
			run(fmt.Sprintf("table %d", i), tables[i])
		}
		for i := 1; i <= 2; i++ {
			run(fmt.Sprintf("figure %d", i), figures[i])
		}
		run("extensions table", experiments.TableExtensions)
	case *ext:
		run("extensions table", experiments.TableExtensions)
	case *tableN != 0:
		f, ok := tables[*tableN]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: no table %d (want 1-5)\n", *tableN)
			os.Exit(2)
		}
		run(fmt.Sprintf("table %d", *tableN), f)
	case *figureN != 0:
		f, ok := figures[*figureN]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: no figure %d (want 1-2)\n", *figureN)
			os.Exit(2)
		}
		run(fmt.Sprintf("figure %d", *figureN), f)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
