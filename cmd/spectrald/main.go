// Command spectrald serves spectral partitioning over HTTP.
//
// It wraps the repro facade in a long-running daemon: clients upload
// netlists (content-addressed by a canonical-form hash), submit
// partitioning or ordering jobs against them, poll status and fetch
// results. A bounded worker pool executes jobs, an LRU cache reuses
// eigendecompositions across jobs on the same netlist, and /metrics
// exposes counters in the Prometheus text format.
//
// Usage:
//
//	spectrald [-addr :8090] [-workers N] [-queue N] [-cache N]
//	          [-max-netlists N] [-parallelism N] [-grace 30s]
//	          [-journal-dir DIR] [-max-queue-wait D]
//	          [-shed-policy none|degrade|reject]
//	          [-store-dir DIR] [-batch-window D] [-batch-max N]
//	          [-peer-self URL] [-peers URL,URL,...]
//	          [-debug-addr 127.0.0.1:8091] [-trace out.jsonl]
//	          [-trace-ring N] [-trace-chunks N] [-warm-start=true]
//
// -workers bounds how many jobs run concurrently; -parallelism bounds
// the goroutines the numerical kernels inside one job may use
// (0 = NumCPU). Results are bit-identical at every -parallelism
// setting; see DESIGN.md, "The parallelism model".
//
// -journal-dir makes the daemon crash-safe: accepted netlists, job
// submissions and terminal states are logged to an append-only,
// checksummed journal in that directory, and on startup the daemon
// replays it — finished jobs are served from their recorded results,
// interrupted jobs run again, and damaged journal tails are truncated
// with a warning rather than refusing to boot. See DESIGN.md, "Failure
// domains and recovery model".
//
// -max-queue-wait fails jobs that sat queued longer than the bound;
// -shed-policy selects what sustained queue pressure does to new jobs
// (degrade them to a cheaper eigenvector count, or reject early).
//
// -store-dir adds a persistent spectrum tier behind the in-memory LRU:
// computed eigendecompositions are written to CRC-framed files in that
// directory, LRU evictions spill there instead of being lost, and a
// restarted daemon serves warm requests by decoding instead of
// recomputing. Corrupt entries are quarantined on read, never served.
//
// -batch-window coalesces concurrent spectrum requests: jobs needing a
// decomposition of the same netlist and model within the window share
// one eigensolve sized to the largest request; -batch-max fires a batch
// early once it holds that many jobs. 0 disables batching.
//
// -peers joins a static shard of spectrald instances (comma-separated
// base URLs) with -peer-self naming this instance's own base URL as the
// peers spell it. Spectrum lookups route to the instance owning the
// netlist fingerprint (rendezvous hashing); a dead peer degrades to
// local compute, never to an error. See DESIGN.md, "Spectrum
// persistence, batching and sharding".
//
// POST /v1/netlists/{hash}/delta submits an incremental (ECO) job: the
// body's delta is applied to the stored base netlist and the result is
// partitioned with an eigensolve warm-started from the base's cached
// spectrum, plus a stability report against the base partition.
// -warm-start=false forces those solves cold (the answers are
// bit-identical either way; warm starting only skips work).
//
// Every job execution is traced (per-stage spans, kernel counters; see
// internal/trace): /metrics exposes the aggregates. -debug-addr opens a
// second listener with net/http/pprof, /debug/trace?job=<id> (recent
// span trees, filterable by job) and /debug/report (the text summary);
// keep it on a loopback or otherwise private address. -trace appends
// every finished span as a JSON line to a file.
//
// On SIGINT or SIGTERM the daemon stops accepting work (healthz flips
// to 503, submissions are refused), shuts the listener down, and lets
// in-flight jobs drain for -grace; jobs still running after the grace
// period are cancelled through their contexts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/parallel"
	"repro/internal/server"
	"repro/internal/specstore"
	"repro/internal/trace"
)

func main() {
	var (
		addr         = flag.String("addr", ":8090", "HTTP listen address")
		workers      = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS, capped at 8)")
		queueDepth   = flag.Int("queue", 0, "job queue depth before 429 backpressure (0 = 64)")
		cacheSize    = flag.Int("cache", 0, "spectrum cache entries (0 = 32)")
		maxNetlists  = flag.Int("max-netlists", 0, "netlist store bound (0 = 128)")
		parallelism  = flag.Int("parallelism", 0, "worker goroutines per numerical kernel (0 = NumCPU)")
		grace        = flag.Duration("grace", 30*time.Second, "drain window for in-flight jobs on shutdown")
		journalDir   = flag.String("journal-dir", "", "durable job journal directory; empty = no crash safety")
		maxQueueWait = flag.Duration("max-queue-wait", 0, "fail jobs queued longer than this (0 = unbounded)")
		shedPolicy   = flag.String("shed-policy", "none", "overload response: none|degrade|reject")
		storeDir     = flag.String("store-dir", "", "persistent spectrum store directory; empty = in-memory cache only")
		batchWindow  = flag.Duration("batch-window", 0, "coalesce same-netlist spectrum requests for this long (0 = off)")
		batchMax     = flag.Int("batch-max", 0, "fire a spectrum batch early at this many jobs (0 = 16)")
		peerSelf     = flag.String("peer-self", "", "this instance's base URL as shard peers spell it (required with -peers)")
		peers        = flag.String("peers", "", "comma-separated shard peer base URLs; empty = no sharding")
		debugAddr    = flag.String("debug-addr", "", "diagnostics listen address (pprof, /debug/trace, /debug/report); empty = disabled")
		traceOut     = flag.String("trace", "", "append finished spans as JSON lines to this file")
		traceRing    = flag.Int("trace-ring", 4096, "recent spans retained for /debug/trace")
		traceChunks  = flag.Int("trace-chunks", 0, "sample one in N parallel chunks as spans (0 = off)")
		warmStart    = flag.Bool("warm-start", true, "seed incremental (ECO delta) eigensolves from the base netlist's cached spectrum")
	)
	flag.Parse()
	parallel.SetLimit(*parallelism)
	policy, ok := jobs.ParseShedPolicy(*shedPolicy)
	if !ok {
		fmt.Fprintf(os.Stderr, "spectrald: unknown -shed-policy %q (want none|degrade|reject)\n", *shedPolicy)
		os.Exit(2)
	}
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	if len(peerList) > 0 && *peerSelf == "" {
		fmt.Fprintln(os.Stderr, "spectrald: -peers requires -peer-self")
		os.Exit(2)
	}
	if err := run(config{
		addr:         *addr,
		workers:      *workers,
		queueDepth:   *queueDepth,
		cacheSize:    *cacheSize,
		maxNetlists:  *maxNetlists,
		grace:        *grace,
		journalDir:   *journalDir,
		maxQueueWait: *maxQueueWait,
		shedPolicy:   policy,
		storeDir:     *storeDir,
		batchWindow:  *batchWindow,
		batchMax:     *batchMax,
		peerSelf:     *peerSelf,
		peers:        peerList,
		debugAddr:    *debugAddr,
		traceOut:     *traceOut,
		traceRing:    *traceRing,
		traceChunks:  *traceChunks,
		noWarmStart:  !*warmStart,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "spectrald:", err)
		os.Exit(1)
	}
}

type config struct {
	addr                           string
	workers, queueDepth, cacheSize int
	maxNetlists                    int
	grace                          time.Duration
	journalDir                     string
	maxQueueWait                   time.Duration
	shedPolicy                     jobs.ShedPolicy
	storeDir                       string
	batchWindow                    time.Duration
	batchMax                       int
	peerSelf                       string
	peers                          []string
	debugAddr, traceOut            string
	traceRing, traceChunks         int
	noWarmStart                    bool
}

func run(cfg config) error {
	ring := trace.NewRing(cfg.traceRing)
	sinks := []trace.Sink{ring}
	if cfg.traceOut != "" {
		f, err := os.OpenFile(cfg.traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open trace file: %w", err)
		}
		defer f.Close()
		sinks = append(sinks, trace.NewJSONWriter(f))
	}
	tracer := trace.New(sinks...)
	tracer.SetChunkSampling(cfg.traceChunks)
	trace.SetGlobal(tracer)

	var jnl *journal.Journal
	var replay *journal.ReplayResult
	if cfg.journalDir != "" {
		var err error
		jnl, replay, err = journal.Open(cfg.journalDir, journal.Options{})
		if err != nil {
			return fmt.Errorf("open journal: %w", err)
		}
		defer jnl.Close()
		for _, warn := range replay.Stats.Warnings {
			log.Printf("journal replay: %s", warn)
		}
	}

	var store specstore.Store
	if cfg.storeDir != "" {
		disk, err := specstore.OpenDisk(cfg.storeDir)
		if err != nil {
			return fmt.Errorf("open spectrum store: %w", err)
		}
		defer disk.Close()
		if q := disk.Stats().Quarantined; q > 0 {
			log.Printf("spectrum store: quarantined %d corrupt entries in %s", q, cfg.storeDir)
		}
		log.Printf("spectrum store: %d entries in %s", disk.Len(), cfg.storeDir)
		store = disk
	}

	pool := jobs.NewPool(jobs.Config{
		Workers:          cfg.workers,
		QueueDepth:       cfg.queueDepth,
		CacheEntries:     cfg.cacheSize,
		MaxQueueWait:     cfg.maxQueueWait,
		ShedPolicy:       cfg.shedPolicy,
		Journal:          jnl,
		Store:            store,
		BatchWindow:      cfg.batchWindow,
		BatchMax:         cfg.batchMax,
		DisableWarmStart: cfg.noWarmStart,
	})
	pool.SetTracer(tracer)
	srv := server.New(pool, server.Config{MaxNetlists: cfg.maxNetlists, Tracer: tracer})
	if len(cfg.peers) > 0 {
		if err := srv.ConfigureSharding(cfg.peerSelf, cfg.peers); err != nil {
			return fmt.Errorf("configure sharding: %w", err)
		}
		log.Printf("shard ring: %s", srv.Ring())
	}
	if jnl != nil {
		stats, nets, err := pool.Restore(replay)
		if err != nil {
			return fmt.Errorf("replay journal: %w", err)
		}
		srv.AdoptNetlists(nets)
		log.Printf("journal replay: %d netlists, %d jobs re-enqueued, %d recovered terminal, %d cancelled, %d failed unrecoverable",
			stats.Netlists, stats.Reenqueued, stats.RecoveredTerminal, stats.CancelledOnReplay, stats.FailedOnReplay)
	}
	pool.Start()

	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              cfg.debugAddr,
			Handler:           server.NewDebugHandler(tracer, ring),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("spectrald diagnostics on %s", cfg.debugAddr)
			if err := debugSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("spectrald listening on %s", cfg.addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		// Listener died before any signal: shut the pool down hard.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = pool.Shutdown(shutdownCtx)
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills us

	log.Printf("signal received; draining (grace %s)", cfg.grace)
	srv.SetDraining(true)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shutdownCtx)
	}
	if err := pool.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain window expired; cancelled remaining jobs: %v", err)
	} else {
		log.Printf("all jobs drained")
	}
	return <-errc
}
