// Command spectrald serves spectral partitioning over HTTP.
//
// It wraps the repro facade in a long-running daemon: clients upload
// netlists (content-addressed by a canonical-form hash), submit
// partitioning or ordering jobs against them, poll status and fetch
// results. A bounded worker pool executes jobs, an LRU cache reuses
// eigendecompositions across jobs on the same netlist, and /metrics
// exposes counters in the Prometheus text format.
//
// Usage:
//
//	spectrald [-addr :8090] [-workers N] [-queue N] [-cache N]
//	          [-max-netlists N] [-parallelism N] [-grace 30s]
//
// -workers bounds how many jobs run concurrently; -parallelism bounds
// the goroutines the numerical kernels inside one job may use
// (0 = NumCPU). Results are bit-identical at every -parallelism
// setting; see DESIGN.md, "The parallelism model".
//
// On SIGINT or SIGTERM the daemon stops accepting work (healthz flips
// to 503, submissions are refused), shuts the listener down, and lets
// in-flight jobs drain for -grace; jobs still running after the grace
// period are cancelled through their contexts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/parallel"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8090", "HTTP listen address")
		workers     = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS, capped at 8)")
		queueDepth  = flag.Int("queue", 0, "job queue depth before 429 backpressure (0 = 64)")
		cacheSize   = flag.Int("cache", 0, "spectrum cache entries (0 = 32)")
		maxNetlists = flag.Int("max-netlists", 0, "netlist store bound (0 = 128)")
		parallelism = flag.Int("parallelism", 0, "worker goroutines per numerical kernel (0 = NumCPU)")
		grace       = flag.Duration("grace", 30*time.Second, "drain window for in-flight jobs on shutdown")
	)
	flag.Parse()
	parallel.SetLimit(*parallelism)
	if err := run(*addr, *workers, *queueDepth, *cacheSize, *maxNetlists, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "spectrald:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queueDepth, cacheSize, maxNetlists int, grace time.Duration) error {
	pool := jobs.NewPool(jobs.Config{
		Workers:      workers,
		QueueDepth:   queueDepth,
		CacheEntries: cacheSize,
	})
	pool.Start()
	srv := server.New(pool, server.Config{MaxNetlists: maxNetlists})

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("spectrald listening on %s", addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		// Listener died before any signal: shut the pool down hard.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = pool.Shutdown(shutdownCtx)
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills us

	log.Printf("signal received; draining (grace %s)", grace)
	srv.SetDraining(true)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := pool.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain window expired; cancelled remaining jobs: %v", err)
	} else {
		log.Printf("all jobs drained")
	}
	return <-errc
}
