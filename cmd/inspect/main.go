// Command inspect reports a netlist's structure and spectral profile:
// size statistics, connectivity, the smallest Laplacian eigenvalues of
// its clique-model graph, and the Donath–Hoffman lower bounds for
// balanced 2-, 4- and 8-way partitionings.
//
// Usage:
//
//	inspect -bench prim1
//	inspect -in circuit.net -model frankle -d 12
//	netgen -name struct -scale 0.2 | inspect
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	spectral "repro"
	"repro/internal/bounds"
	"repro/internal/eigen"
	"repro/internal/graph"
)

func main() {
	var (
		in          = flag.String("in", "", "netlist file (default stdin)")
		format      = flag.String("format", "text", "input format: text|hmetis")
		benchN      = flag.String("bench", "", "use a built-in benchmark instead of -in")
		scale       = flag.Float64("scale", 1.0, "benchmark scale")
		model       = flag.String("model", "partitioning-specific", "clique model: standard|partitioning-specific|frankle")
		d           = flag.Int("d", 10, "eigenvalues to report")
		listMethods = flag.Bool("methods", false, "list the partitioning methods the facade accepts and exit")
	)
	flag.Parse()

	if *listMethods {
		for _, name := range spectral.MethodNames() {
			m, _ := spectral.ParseMethod(name)
			fmt.Printf("%-10s %s\n", name, spectral.MethodSummary(m))
		}
		return
	}

	h, err := load(*in, *benchN, *scale, *format)
	if err != nil {
		fatal(err)
	}
	s := h.Stats()
	fmt.Printf("modules:     %d\n", s.Modules)
	fmt.Printf("nets:        %d\n", s.Nets)
	fmt.Printf("pins:        %d\n", s.Pins)
	fmt.Printf("avg net:     %.3f pins\n", s.AvgNetSize)
	fmt.Printf("max net:     %d pins\n", s.MaxNetSize)
	fmt.Printf("total area:  %.3f (explicit areas: %v)\n", h.TotalArea(), h.HasAreas())
	fmt.Printf("connected:   %v\n", h.IsConnected())
	if comps := h.Components(); len(comps) > 1 {
		fmt.Printf("components:  %d (largest %d modules)\n", len(comps), len(comps[0]))
	}

	var m graph.CliqueModel
	switch *model {
	case "standard":
		m = graph.Standard
	case "partitioning-specific":
		m = graph.PartitioningSpecific
	case "frankle":
		m = graph.Frankle
	default:
		fatal(fmt.Errorf("unknown clique model %q", *model))
	}
	g, err := graph.FromHypergraph(h, m, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nclique model %v: %d edges, total degree %.3f\n", m, g.NumEdges(), g.TotalDegree())

	want := *d + 1
	if want > g.N() {
		want = g.N()
	}
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), want)
	if err != nil {
		fatal(fmt.Errorf("eigensolve: %v", err))
	}
	fmt.Printf("smallest Laplacian eigenvalues:\n  ")
	for j, l := range dec.Values {
		if j > 0 && j%6 == 0 {
			fmt.Printf("\n  ")
		}
		fmt.Printf("λ%-2d=%-10.6f ", j+1, l)
	}
	fmt.Println()

	n := h.NumModules()
	fmt.Println("\nDonath-Hoffman lower bounds on f(P_k) = Σ_h E_h (balanced sizes):")
	for _, k := range []int{2, 4, 8} {
		if k > n || k > want {
			continue
		}
		sizes := make([]int, k)
		base, rem := n/k, n%k
		for i := range sizes {
			sizes[i] = base
			if i < rem {
				sizes[i]++
			}
		}
		b, err := bounds.DonathHoffman(g, sizes)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  k=%d: f >= %.4f\n", k, b)
	}
}

func load(in, benchName string, scale float64, format string) (*spectral.Netlist, error) {
	if benchName != "" {
		return spectral.GenerateBenchmark(benchName, scale)
	}
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	switch format {
	case "hmetis":
		return spectral.LoadHMetis(r)
	case "text", "":
		_, h, err := spectral.LoadNetlist(r)
		return h, err
	default:
		return nil, fmt.Errorf("unknown format %q (want text|hmetis)", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inspect:", err)
	os.Exit(1)
}
