// Command netgen emits benchmark netlists in the text interchange format.
//
// Usage:
//
//	netgen -list                      # show the registered benchmarks
//	netgen -name prim1 > prim1.net    # full published size
//	netgen -name industry2 -scale 0.1 -o ind2_small.net
//	netgen -name prim1 -seed 42       # alternate random instance
package main

import (
	"flag"
	"fmt"
	"os"

	spectral "repro"
	"repro/internal/bench"
)

func main() {
	var (
		name   = flag.String("name", "", "benchmark name")
		scale  = flag.Float64("scale", 1.0, "scale factor (0,1]")
		out    = flag.String("o", "", "output file (default stdout)")
		format = flag.String("format", "text", "output format: text|hmetis")
		seed   = flag.Int64("seed", 0, "generator seed (0 = derive from benchmark name)")
		list   = flag.Bool("list", false, "list registered benchmarks")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %8s %8s %8s\n", "name", "modules", "nets", "pins")
		for _, c := range bench.Table1 {
			fmt.Printf("%-12s %8d %8d %8d\n", c.Name, c.Modules, c.Nets, c.Pins)
		}
		return
	}
	if *name == "" {
		flag.Usage()
		os.Exit(2)
	}
	h, err := spectral.GenerateBenchmarkSeeded(*name, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "hmetis":
		if err := spectral.SaveHMetis(w, h); err != nil {
			fatal(err)
		}
	case "text", "":
		if err := spectral.SaveNetlist(w, *name, h); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q (want text|hmetis)", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netgen:", err)
	os.Exit(1)
}
