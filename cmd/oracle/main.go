// Command oracle runs the exact differential harness: every partitioner
// in the repository, cross-checked on a seeded corpus of tiny netlists
// against brute-force enumeration. For each (method, case) pair it
// asserts feasibility, reported-cut consistency, and cut ≥ exact
// optimum, and it aggregates per-method optimality-gap statistics into
// BENCH_oracle.json.
//
// Usage:
//
//	oracle [-seed 1] [-out BENCH_oracle.json] [-trace-report=false]
//
// The harness runs under a process-global tracer; -trace-report
// (default on) prints the aggregate span timings and kernel counter
// totals to stderr after the results table, so a slow oracle run shows
// where the time went.
//
// Exit status is non-zero when any violation is found — the harness is
// a correctness gate, not a benchmark: a heuristic may be far from the
// optimum, but it may never be infeasible, misreport its cut, or beat
// the brute force.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/oracle"
	"repro/internal/trace"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "corpus seed (same seed, same corpus)")
		out      = flag.String("out", "BENCH_oracle.json", "output path")
		traceRep = flag.Bool("trace-report", true, "print the trace summary to stderr after the results")
	)
	flag.Parse()

	tracer := trace.New()
	trace.SetGlobal(tracer)

	cases := oracle.Corpus(*seed)
	fmt.Printf("oracle: %d cases, n <= %d\n", len(cases), oracle.MaxModules)
	rep, err := oracle.Run(*seed, cases)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oracle: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%-12s %9s %8s %9s %8s\n", "method", "instances", "optimal", "mean-gap", "max-gap")
	for _, m := range rep.Methods {
		fmt.Printf("%-12s %9d %8d %9.3f %8.3f\n", m.Method, m.Instances, m.Optimal, m.MeanGap, m.MaxGap)
	}
	for _, v := range rep.Violations {
		fmt.Printf("VIOLATION %s/%s: %s\n", v.Case, v.Method, v.Detail)
	}
	if *traceRep {
		tracer.WriteReport(os.Stderr)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "oracle: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "oracle: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "oracle: %d violations\n", len(rep.Violations))
		os.Exit(1)
	}
}
