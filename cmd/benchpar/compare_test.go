package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, r Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func kernel(name string, serial, par float64) Kernel {
	return Kernel{Name: name, SerialSeconds: serial, ParallelSeconds: par, Speedup: serial / par, Reps: 3}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	base := writeReport(t, Report{Kernels: []Kernel{kernel("matvec", 0.010, 0.005)}})
	cur := Report{Kernels: []Kernel{kernel("matvec", 0.012, 0.006)}}
	if err := gate(cur, base, "1.5x", 0); err != nil {
		t.Fatal(err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := writeReport(t, Report{Kernels: []Kernel{kernel("matvec", 0.010, 0.005)}})
	cur := Report{Kernels: []Kernel{kernel("matvec", 0.020, 0.005)}}
	err := gate(cur, base, "1.5x", 0)
	if err == nil || !strings.Contains(err.Error(), "matvec serial") {
		t.Fatalf("want serial regression failure, got %v", err)
	}
}

func TestGateFailsOnMissingKernel(t *testing.T) {
	base := writeReport(t, Report{Kernels: []Kernel{
		kernel("matvec", 0.010, 0.005),
		kernel("lanczos", 0.100, 0.050),
	}})
	cur := Report{Kernels: []Kernel{kernel("matvec", 0.010, 0.005)}}
	err := gate(cur, base, "1.5x", 0)
	if err == nil || !strings.Contains(err.Error(), `"lanczos"`) {
		t.Fatalf("want missing-kernel failure, got %v", err)
	}
}

func TestGateReportsEveryViolation(t *testing.T) {
	base := writeReport(t, Report{Kernels: []Kernel{
		kernel("matvec", 0.010, 0.005),
		kernel("lanczos", 0.100, 0.050),
	}})
	cur := Report{Kernels: []Kernel{kernel("matvec", 0.050, 0.050)}}
	err := gate(cur, base, "1.5x", 0)
	if err == nil {
		t.Fatal("want failure")
	}
	for _, want := range []string{"matvec serial", "matvec parallel", `"lanczos"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error lacks %q:\n%v", want, err)
		}
	}
}

func TestGateSubMillisecondColumnsExempt(t *testing.T) {
	// 20µs vs 90µs is a 4.5x "regression" that is pure timer noise;
	// both sit under the 100µs floor and must not trip the gate.
	base := writeReport(t, Report{Kernels: []Kernel{kernel("tiny", 20e-6, 20e-6)}})
	cur := Report{Kernels: []Kernel{kernel("tiny", 90e-6, 90e-6)}}
	if err := gate(cur, base, "1.5x", 0); err != nil {
		t.Fatal(err)
	}
}

func TestOverheadGate(t *testing.T) {
	ok := Report{Kernels: []Kernel{kernel("trace-off-lanczos", 0.100, 0.101)}}
	if err := gate(ok, "", "1.5x", 1.02); err != nil {
		t.Fatal(err)
	}
	bad := Report{Kernels: []Kernel{kernel("trace-off-lanczos", 0.100, 0.110)}}
	err := gate(bad, "", "1.5x", 1.02)
	if err == nil || !strings.Contains(err.Error(), "trace-off-lanczos") {
		t.Fatalf("want overhead failure, got %v", err)
	}
	// trace-on rows are informational, never gated.
	onOnly := Report{Kernels: []Kernel{
		kernel("trace-off-lanczos", 0.100, 0.100),
		kernel("trace-on-lanczos", 0.100, 0.500),
	}}
	if err := gate(onOnly, "", "1.5x", 1.02); err != nil {
		t.Fatal(err)
	}
}

func TestOverheadGateNeedsRows(t *testing.T) {
	cur := Report{Kernels: []Kernel{kernel("matvec", 0.010, 0.005)}}
	err := gate(cur, "", "1.5x", 1.02)
	if err == nil || !strings.Contains(err.Error(), "no trace-off-") {
		t.Fatalf("gate without overhead rows must fail, got %v", err)
	}
}

func TestParseTolerance(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		ok   bool
	}{
		{"1.5x", 1.5, true},
		{"1.5", 1.5, true},
		{" 2x ", 2, true},
		{"0.5x", 0, false},
		{"", 0, false},
		{"fast", 0, false},
	} {
		got, err := parseTolerance(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("parseTolerance(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestLoadReportErrors(t *testing.T) {
	if _, err := loadReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(bad); err == nil {
		t.Error("malformed JSON must fail")
	}
}
