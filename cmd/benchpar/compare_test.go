package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, r Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func kernel(name string, serial, par float64) Kernel {
	return Kernel{Name: name, SerialSeconds: serial, ParallelSeconds: par, Speedup: serial / par, Reps: 3}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	base := writeReport(t, Report{Kernels: []Kernel{kernel("matvec", 0.010, 0.005)}})
	cur := Report{Kernels: []Kernel{kernel("matvec", 0.012, 0.006)}}
	if err := gate(cur, base, "1.5x", 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := writeReport(t, Report{Kernels: []Kernel{kernel("matvec", 0.010, 0.005)}})
	cur := Report{Kernels: []Kernel{kernel("matvec", 0.020, 0.005)}}
	err := gate(cur, base, "1.5x", 0, false)
	if err == nil || !strings.Contains(err.Error(), "matvec serial") {
		t.Fatalf("want serial regression failure, got %v", err)
	}
}

func TestGateFailsOnMissingKernel(t *testing.T) {
	base := writeReport(t, Report{Kernels: []Kernel{
		kernel("matvec", 0.010, 0.005),
		kernel("lanczos", 0.100, 0.050),
	}})
	cur := Report{Kernels: []Kernel{kernel("matvec", 0.010, 0.005)}}
	err := gate(cur, base, "1.5x", 0, false)
	if err == nil || !strings.Contains(err.Error(), `"lanczos"`) {
		t.Fatalf("want missing-kernel failure, got %v", err)
	}
}

func TestGateReportsEveryViolation(t *testing.T) {
	base := writeReport(t, Report{Kernels: []Kernel{
		kernel("matvec", 0.010, 0.005),
		kernel("lanczos", 0.100, 0.050),
	}})
	cur := Report{Kernels: []Kernel{kernel("matvec", 0.050, 0.050)}}
	err := gate(cur, base, "1.5x", 0, false)
	if err == nil {
		t.Fatal("want failure")
	}
	for _, want := range []string{"matvec serial", "matvec parallel", `"lanczos"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error lacks %q:\n%v", want, err)
		}
	}
}

func TestGateSubMillisecondColumnsExempt(t *testing.T) {
	// 20µs vs 90µs is a 4.5x "regression" that is pure timer noise;
	// both sit under the 100µs floor and must not trip the gate.
	base := writeReport(t, Report{Kernels: []Kernel{kernel("tiny", 20e-6, 20e-6)}})
	cur := Report{Kernels: []Kernel{kernel("tiny", 90e-6, 90e-6)}}
	if err := gate(cur, base, "1.5x", 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestOverheadGate(t *testing.T) {
	ok := Report{Kernels: []Kernel{kernel("trace-off-lanczos", 0.100, 0.101)}}
	if err := gate(ok, "", "1.5x", 1.02, false); err != nil {
		t.Fatal(err)
	}
	bad := Report{Kernels: []Kernel{kernel("trace-off-lanczos", 0.100, 0.110)}}
	err := gate(bad, "", "1.5x", 1.02, false)
	if err == nil || !strings.Contains(err.Error(), "trace-off-lanczos") {
		t.Fatalf("want overhead failure, got %v", err)
	}
	// trace-on rows are informational, never gated.
	onOnly := Report{Kernels: []Kernel{
		kernel("trace-off-lanczos", 0.100, 0.100),
		kernel("trace-on-lanczos", 0.100, 0.500),
	}}
	if err := gate(onOnly, "", "1.5x", 1.02, false); err != nil {
		t.Fatal(err)
	}
}

func TestOverheadGateNeedsRows(t *testing.T) {
	cur := Report{Kernels: []Kernel{kernel("matvec", 0.010, 0.005)}}
	err := gate(cur, "", "1.5x", 1.02, false)
	if err == nil || !strings.Contains(err.Error(), "no trace-off-") {
		t.Fatalf("gate without overhead rows must fail, got %v", err)
	}
}

func scalingCurve(name string, speedups map[int]float64) ScalingKernel {
	sk := ScalingKernel{Name: name}
	for _, gmp := range []int{1, 2, 4} {
		sp, ok := speedups[gmp]
		if !ok {
			continue
		}
		sk.Points = append(sk.Points, ScalingPoint{
			GoMaxProcs: gmp, Workers: gmp, Seconds: 0.010 / sp, Speedup: sp,
		})
	}
	return sk
}

func TestGateRefusesMismatchedEnvironment(t *testing.T) {
	base := writeReport(t, Report{Cores: 8, GoMaxProcs: 8, Kernels: []Kernel{kernel("matvec", 0.010, 0.005)}})
	cur := Report{Cores: 1, GoMaxProcs: 1, Kernels: []Kernel{kernel("matvec", 0.010, 0.005)}}
	err := gate(cur, base, "1.5x", 0, false)
	if err == nil || !strings.Contains(err.Error(), "different environment") || !strings.Contains(err.Error(), "-force") {
		t.Fatalf("want env-mismatch refusal mentioning -force, got %v", err)
	}
	// -force acknowledges the mismatch and proceeds to the usual checks.
	if err := gate(cur, base, "1.5x", 0, true); err != nil {
		t.Fatalf("gate with -force on a passing report: %v", err)
	}
	// ...but -force does not suspend the checks themselves.
	slow := Report{Cores: 1, GoMaxProcs: 1, Kernels: []Kernel{kernel("matvec", 0.050, 0.005)}}
	if err := gate(slow, base, "1.5x", 0, true); err == nil {
		t.Fatal("gate with -force must still flag timing regressions")
	}
}

func TestGateFailsOnScalingRegression(t *testing.T) {
	base := writeReport(t, Report{Scaling: []ScalingKernel{
		scalingCurve("matvec", map[int]float64{1: 1.0, 2: 1.8, 4: 3.2}),
	}})
	cur := Report{Scaling: []ScalingKernel{
		scalingCurve("matvec", map[int]float64{1: 1.0, 2: 1.7, 4: 1.1}),
	}}
	err := gate(cur, base, "1.5x", 0, false)
	if err == nil || !strings.Contains(err.Error(), "matvec@gomaxprocs=4") {
		t.Fatalf("want scaling regression at gomaxprocs=4, got %v", err)
	}
	if strings.Contains(err.Error(), "gomaxprocs=2") {
		t.Errorf("gomaxprocs=2 (1.7x vs 1.8x/1.5) is within tolerance, got %v", err)
	}
}

func TestGateFailsOnMissingScalingPoint(t *testing.T) {
	base := writeReport(t, Report{Scaling: []ScalingKernel{
		scalingCurve("lanczos", map[int]float64{1: 1.0, 2: 1.8, 4: 3.0}),
	}})
	cur := Report{Scaling: []ScalingKernel{
		scalingCurve("lanczos", map[int]float64{1: 1.0, 2: 1.8}),
	}}
	err := gate(cur, base, "1.5x", 0, false)
	if err == nil || !strings.Contains(err.Error(), "lanczos@gomaxprocs=4") || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("want missing-scaling-point failure, got %v", err)
	}
}

func TestGateScalingNoiseFloorExempt(t *testing.T) {
	// Sub-100µs points are timer noise; a speedup collapse there must
	// not trip the gate.
	tiny := ScalingKernel{Name: "tiny", Points: []ScalingPoint{
		{GoMaxProcs: 1, Workers: 1, Seconds: 50e-6, Speedup: 1.0},
		{GoMaxProcs: 4, Workers: 4, Seconds: 20e-6, Speedup: 2.5},
	}}
	base := writeReport(t, Report{Scaling: []ScalingKernel{tiny}})
	cur := Report{Scaling: []ScalingKernel{{Name: "tiny", Points: []ScalingPoint{
		{GoMaxProcs: 1, Workers: 1, Seconds: 50e-6, Speedup: 1.0},
		{GoMaxProcs: 4, Workers: 4, Seconds: 60e-6, Speedup: 0.83},
	}}}}
	if err := gate(cur, base, "1.5x", 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestParseScalingLevels(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []int
		ok   bool
	}{
		{"1,2,4", []int{1, 2, 4}, true},
		{" 1 , 8 ", []int{1, 8}, true},
		{"", nil, true},
		{"0", nil, false},
		{"two", nil, false},
	} {
		got, err := parseScalingLevels(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("parseScalingLevels(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("parseScalingLevels(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("parseScalingLevels(%q) = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}

func TestParseTolerance(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		ok   bool
	}{
		{"1.5x", 1.5, true},
		{"1.5", 1.5, true},
		{" 2x ", 2, true},
		{"0.5x", 0, false},
		{"", 0, false},
		{"fast", 0, false},
	} {
		got, err := parseTolerance(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("parseTolerance(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestLoadReportErrors(t *testing.T) {
	if _, err := loadReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(bad); err == nil {
		t.Error("malformed JSON must fail")
	}
}
