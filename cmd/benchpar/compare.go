package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// gate enforces the bench-regression rules on a fresh report:
//
//   - against a baseline report (comparePath non-empty): the baseline
//     must come from the same environment (cores, gomaxprocs) unless
//     force acknowledges the mismatch; every baseline kernel must exist
//     in the current report, and neither its serial nor parallel time
//     may exceed baseline x tolerance; every baseline scaling point
//     must exist in the current report, and its speedup may not drop
//     below baseline ÷ tolerance;
//   - within the current report (maxTraceOverhead > 0): every
//     trace-off-* row's traced/untraced ratio must stay at or below the
//     bound. This gate needs no baseline file and no machine parity —
//     both columns were measured by the same process moments apart.
//
// It returns an error describing every violation, not just the first,
// so a CI failure names the full damage.
func gate(cur Report, comparePath, tolerance string, maxTraceOverhead float64, force bool) error {
	var violations []string

	if comparePath != "" {
		tol, err := parseTolerance(tolerance)
		if err != nil {
			return err
		}
		base, err := loadReport(comparePath)
		if err != nil {
			return err
		}
		if base.Cores != cur.Cores || base.GoMaxProcs != cur.GoMaxProcs {
			msg := fmt.Sprintf(
				"baseline %s was measured on a different environment (baseline cores=%d gomaxprocs=%d, current cores=%d gomaxprocs=%d); cross-machine timing ratios are meaningless",
				comparePath, base.Cores, base.GoMaxProcs, cur.Cores, cur.GoMaxProcs)
			if !force {
				return fmt.Errorf("%s — pass -force to compare anyway", msg)
			}
			fmt.Fprintln(os.Stderr, "benchpar: warning:", msg, "(-force given, comparing anyway)")
		}
		curByName := make(map[string]Kernel, len(cur.Kernels))
		for _, k := range cur.Kernels {
			curByName[k.Name] = k
		}
		for _, bk := range base.Kernels {
			ck, ok := curByName[bk.Name]
			if !ok {
				violations = append(violations, fmt.Sprintf("kernel %q present in baseline but missing from current report", bk.Name))
				continue
			}
			violations = append(violations, checkColumn(bk.Name, "serial", ck.SerialSeconds, bk.SerialSeconds, tol)...)
			violations = append(violations, checkColumn(bk.Name, "parallel", ck.ParallelSeconds, bk.ParallelSeconds, tol)...)
		}
		violations = append(violations, checkScaling(cur, base, tol)...)
	}

	if maxTraceOverhead > 0 {
		checked := 0
		for _, k := range cur.Kernels {
			if !strings.HasPrefix(k.Name, "trace-off-") {
				continue
			}
			checked++
			if k.SerialSeconds <= 0 {
				violations = append(violations, fmt.Sprintf("%s: untraced time %g not positive", k.Name, k.SerialSeconds))
				continue
			}
			if ratio := k.ParallelSeconds / k.SerialSeconds; ratio > maxTraceOverhead {
				violations = append(violations, fmt.Sprintf(
					"%s: disabled-tracer overhead %.3fx exceeds bound %.3fx", k.Name, ratio, maxTraceOverhead))
			}
		}
		if checked == 0 {
			violations = append(violations, "max-trace-overhead gate requested but report has no trace-off-* rows")
		}
	}

	if len(violations) > 0 {
		return fmt.Errorf("bench gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}

// checkScaling compares per-core scaling curves point by point. A
// baseline point missing from the current report is a violation (the
// curve silently shrank); a point whose speedup fell below baseline ÷
// tol is a scaling regression. Points whose timings sit under the 100µs
// noise floor in either report are exempt, like checkColumn.
func checkScaling(cur, base Report, tol float64) []string {
	const floor = 100e-6
	var violations []string
	type key struct {
		name string
		gmp  int
	}
	curPts := make(map[key]ScalingPoint)
	for _, sk := range cur.Scaling {
		for _, p := range sk.Points {
			curPts[key{sk.Name, p.GoMaxProcs}] = p
		}
	}
	for _, bk := range base.Scaling {
		for _, bp := range bk.Points {
			cp, ok := curPts[key{bk.Name, bp.GoMaxProcs}]
			if !ok {
				violations = append(violations, fmt.Sprintf(
					"scaling point %s@gomaxprocs=%d present in baseline but missing from current report", bk.Name, bp.GoMaxProcs))
				continue
			}
			if bp.Seconds <= floor || cp.Seconds <= floor {
				continue
			}
			if cp.Speedup < bp.Speedup/tol {
				violations = append(violations, fmt.Sprintf(
					"scaling %s@gomaxprocs=%d: speedup %.2fx fell below baseline %.2fx / %.2f = %.2fx",
					bk.Name, bp.GoMaxProcs, cp.Speedup, bp.Speedup, tol, bp.Speedup/tol))
			}
		}
	}
	return violations
}

// checkColumn compares one timing column against its baseline. Columns
// faster than 100µs are exempt from the ratio gate: at that scale,
// scheduler jitter alone produces multi-x ratios and the gate would
// only measure noise.
func checkColumn(kernel, col string, cur, base, tol float64) []string {
	const floor = 100e-6
	if base <= floor || cur <= floor {
		return nil
	}
	if cur > base*tol {
		return []string{fmt.Sprintf("%s %s: %.3fms exceeds baseline %.3fms x %.2f = %.3fms",
			kernel, col, cur*1e3, base*1e3, tol, base*tol*1e3)}
	}
	return nil
}

// parseTolerance parses "1.5x" (or "1.5") into a multiplier >= 1.
func parseTolerance(s string) (float64, error) {
	t := strings.TrimSuffix(strings.TrimSpace(s), "x")
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("bad -tolerance %q: %v", s, err)
	}
	if v < 1 {
		return 0, fmt.Errorf("bad -tolerance %q: want >= 1", s)
	}
	return v, nil
}

func loadReport(path string) (Report, error) {
	var r Report
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("parse %s: %v", path, err)
	}
	return r, nil
}
