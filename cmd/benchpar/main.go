// Command benchpar measures the serial-vs-parallel throughput of the
// hot numerical kernels (row-sharded MatVec, Lanczos, MELO ordering)
// and writes a machine-readable baseline to BENCH_parallel.json.
//
// Usage:
//
//	benchpar [-n 20000] [-workers 0] [-reps 5] [-out BENCH_parallel.json]
//	         [-trace out.jsonl] [-scaling 1,2,4]
//	         [-compare BENCH_parallel.json] [-tolerance 1.5x] [-force]
//	         [-max-trace-overhead 1.02]
//
// The report records runtime.NumCPU so a baseline captured on a small
// machine is not mistaken for a scaling claim: speedups near 1.0 with
// cores=1 are the expected, honest result. On >= 4 cores the MatVec
// speedup is the ISSUE's >= 2x acceptance gauge.
//
// -scaling additionally runs the kernel suite pinned at each listed
// GOMAXPROCS value (workers = GOMAXPROCS), producing per-core scaling
// curves in the report's "scaling" section. Each point's speedup is
// relative to the same kernel's GOMAXPROCS=1 point, so the curve reads
// directly as parallel efficiency. Points above runtime.NumCPU are
// measured like any other and simply show the flat truth.
//
// The delta-warm-vs-cold row times an incremental (ECO) re-solve: the
// serial column decomposes a mutated netlist cold, the parallel column
// runs the same decomposition warm-started from the base netlist's
// spectrum, so the speedup is the warm-start win the -compare gate
// then holds onto.
//
// Besides the serial-vs-parallel rows, the report carries
// tracer-overhead rows (trace-off-*, trace-on-*): each times a kernel
// with no tracer in the serial column and with a disabled (trace-off)
// or enabled (trace-on) tracer in the parallel column, so the
// "speedup" is the inverse overhead factor. The trace-off rows are the
// instrumentation's no-op guarantee, budgeted at <= 2%.
//
// -compare gates a fresh run against a previous report: any kernel
// whose serial or parallel time exceeds baseline x tolerance fails
// (exit 1), as does a kernel or scaling point missing from the new
// report, or a scaling point whose speedup dropped below baseline ÷
// tolerance. Baselines from a different environment (cores or
// gomaxprocs mismatch) are refused outright — cross-machine timing
// ratios are meaningless — unless -force acknowledges the mismatch.
// -max-trace-overhead additionally bounds the trace-off rows'
// traced/untraced ratio in the CURRENT run (machine-independent, since
// both columns come from the same process).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	spectral "repro"
	"repro/internal/delta"
	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/melo"
	"repro/internal/parallel"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// Report is the top-level BENCH_parallel.json document.
type Report struct {
	// Cores is runtime.NumCPU on the measuring machine; speedups are
	// only meaningful relative to it.
	Cores int `json:"cores"`
	// Workers is the parallel worker count the "parallel" timings used.
	Workers int `json:"workers"`
	// GoMaxProcs is the scheduler's thread bound at measurement time.
	GoMaxProcs int `json:"gomaxprocs"`
	// N is the module count of the synthesized netlist for MatVec.
	N int `json:"n"`
	// Kernels holds one entry per measured kernel.
	Kernels []Kernel `json:"kernels"`
	// Scaling holds the per-GOMAXPROCS scaling curves (-scaling flag).
	Scaling []ScalingKernel `json:"scaling,omitempty"`
}

// ScalingKernel is one kernel's per-core scaling curve.
type ScalingKernel struct {
	Name   string         `json:"name"`
	Points []ScalingPoint `json:"points"`
}

// ScalingPoint is one (GOMAXPROCS, workers) timing of a kernel.
// Speedup is relative to the same kernel's GOMAXPROCS=1 point.
type ScalingPoint struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	Speedup    float64 `json:"speedup"`
}

// Kernel is one serial-vs-parallel measurement. Tracer-overhead rows
// reuse the columns (serial = untraced, parallel = traced) and say so
// in Note.
type Kernel struct {
	Name            string  `json:"name"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Reps            int     `json:"reps"`
	Note            string  `json:"note,omitempty"`
}

func main() {
	var (
		n          = flag.Int("n", 20000, "modules in the synthesized MatVec netlist")
		workers    = flag.Int("workers", 0, "parallel worker count (0 = NumCPU)")
		reps       = flag.Int("reps", 5, "repetitions per timing (best-of)")
		out        = flag.String("out", "BENCH_parallel.json", "output path")
		traceOut   = flag.String("trace", "", "append finished spans as JSON lines to this file")
		comparePth = flag.String("compare", "", "baseline report to gate against (empty = no gate)")
		tolerance  = flag.String("tolerance", "1.5x", "max allowed slowdown vs baseline per kernel column")
		maxTraceOv = flag.Float64("max-trace-overhead", 0, "max traced/untraced ratio for trace-off rows (0 = no gate)")
		scalingLvl = flag.String("scaling", "1,2,4", "comma-separated GOMAXPROCS values for the scaling curves (empty disables)")
		force      = flag.Bool("force", false, "compare against a baseline from a mismatched environment (cores/gomaxprocs)")
	)
	flag.Parse()
	w := parallel.Workers(*workers)

	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		// Installed globally so the ctx-free kernels report through the
		// fallback path; removed before the overhead rows run their
		// untraced baselines.
		trace.SetGlobal(trace.New(trace.NewJSONWriter(f)))
	}

	rep := Report{Cores: runtime.NumCPU(), Workers: w, GoMaxProcs: runtime.GOMAXPROCS(0), N: *n}

	big := buildGraph(*n)
	q := big.Laplacian()
	x := make([]float64, big.N())
	for i := range x {
		x[i] = float64(i%13) * 0.3
	}
	y := make([]float64, big.N())
	matvecPar := func() { q.MatVecPar(x, y, w) }
	rep.Kernels = append(rep.Kernels, measure("matvec", *reps,
		func() { q.MatVec(x, y) },
		matvecPar,
	))

	mid := buildGraph(4000)
	qm := mid.Laplacian()
	lanczosPar := func() { mustSolve(qm, w) }
	rep.Kernels = append(rep.Kernels, measure("lanczos", *reps,
		func() { mustSolve(qm, 1) },
		lanczosPar,
	))

	small := buildGraph(2000)
	dec, err := eigen.SmallestEigenpairs(small.Laplacian(), 9)
	if err != nil {
		fatal(err)
	}
	meloPar := func() { mustOrder(small, dec, w) }
	rep.Kernels = append(rep.Kernels, measure("melo-order", *reps,
		func() { mustOrder(small, dec, 1) },
		meloPar,
	))

	// Multilevel-vs-flat rows: the serial column times the flat MELO
	// pipeline end to end, the parallel column the multilevel V-cycle on
	// the same netlist, so "speedup" is the algorithmic win of
	// coarsen→solve→uncoarsen over the O(d·n²) flat path. At n = 10⁵ the
	// flat path is impractical on CI budgets, so that row compares the
	// V-cycle against itself at workers=1 (the scaling column).
	mlNote := "serial column = flat MELO, parallel column = MultilevelMELO; speedup = algorithmic win"
	for _, mn := range []int{1000, 10000} {
		hn := buildNetlist(mn)
		flat := func() { mustPartition(hn, spectral.MELO, w) }
		ml := func() { mustPartition(hn, spectral.MultilevelMELO, w) }
		mlReps := *reps
		if mn >= 10000 && mlReps > 2 {
			mlReps = 2 // the flat column alone is seconds per rep
		}
		k := measure(fmt.Sprintf("ml-vs-flat-n%d", mn), mlReps, flat, ml)
		k.Note = mlNote
		rep.Kernels = append(rep.Kernels, k)
	}
	{
		hn := buildNetlist(100000)
		k := measure("multilevel-n100000", 2,
			func() { mustPartition(hn, spectral.MultilevelMELO, 1) },
			func() { mustPartition(hn, spectral.MultilevelMELO, w) },
		)
		k.Note = "both columns = MultilevelMELO (flat MELO is impractical at this n); serial = workers 1"
		rep.Kernels = append(rep.Kernels, k)
	}

	// Incremental (ECO) warm-start row: serial column = cold decompose of
	// a mutated netlist, parallel column = the same decompose seeded with
	// the base netlist's spectrum, so "speedup" is the warm-start win.
	// The delta swaps one chain net for a three-pin net — small enough to
	// seed from, big enough to force a real (seeded) re-solve.
	{
		base := buildNetlist(4000)
		mut, _, err := delta.Apply(base, &delta.Delta{
			RemoveNets: []string{"c100"},
			AddNets:    []delta.NetChange{{Name: "eco", Modules: []int{5, 2500, 3999}}},
		})
		if err != nil {
			fatal(err)
		}
		ctx := context.Background()
		seed, err := spectral.DecomposeCtx(ctx, base, spectral.ModelPartitioningSpecific, 10)
		if err != nil {
			fatal(err)
		}
		var info spectral.WarmInfo
		k := measure("delta-warm-vs-cold", *reps,
			func() {
				if _, err := spectral.DecomposeCtx(ctx, mut, spectral.ModelPartitioningSpecific, 10); err != nil {
					fatal(err)
				}
			},
			func() {
				var werr error
				if _, info, werr = spectral.DecomposeWarmCtxPolicy(ctx, mut, spectral.ModelPartitioningSpecific, 10, seed, resilience.EigenPolicy{}); werr != nil {
					fatal(werr)
				}
			},
		)
		k.Note = fmt.Sprintf("serial column = cold decompose of the delta netlist, parallel column = warm-started (outcome %q); speedup = warm-start win", info.Outcome)
		rep.Kernels = append(rep.Kernels, k)
	}

	// Tracer-overhead rows: same kernel, untraced vs traced, in one
	// process. trace-off rows must stay within the <= 2% no-op budget.
	for _, k := range []struct {
		name string
		fn   func()
	}{
		{"matvec", matvecPar},
		{"lanczos", lanczosPar},
		{"melo", meloPar},
	} {
		rep.Kernels = append(rep.Kernels, measureOverhead(k.name, *reps, k.fn)...)
	}

	// Per-core scaling curves: pin GOMAXPROCS to each requested level and
	// run the kernel with workers = GOMAXPROCS, so the curve measures
	// real scheduler-level parallelism, not just goroutine fan-out over
	// however many threads happen to exist.
	if levels, err := parseScalingLevels(*scalingLvl); err != nil {
		fatal(err)
	} else if len(levels) > 0 {
		kernels := []struct {
			name string
			fn   func(workers int)
		}{
			{"matvec", func(wk int) { q.MatVecPar(x, y, wk) }},
			{"lanczos", func(wk int) { mustSolve(qm, wk) }},
			{"melo-order", func(wk int) { mustOrder(small, dec, wk) }},
		}
		prev := runtime.GOMAXPROCS(0)
		for _, k := range kernels {
			sk := ScalingKernel{Name: k.name}
			for _, gmp := range levels {
				runtime.GOMAXPROCS(gmp)
				fn, wk := k.fn, gmp
				secs := bestOf(*reps, func() { fn(wk) })
				sk.Points = append(sk.Points, ScalingPoint{
					GoMaxProcs: gmp, Workers: gmp, Seconds: secs,
				})
			}
			// Speedups are relative to the GOMAXPROCS=1 point (the first
			// level if 1 was not requested).
			base := sk.Points[0].Seconds
			for _, p := range sk.Points {
				if p.GoMaxProcs == 1 {
					base = p.Seconds
					break
				}
			}
			for i := range sk.Points {
				sk.Points[i].Speedup = base / sk.Points[i].Seconds
			}
			runtime.GOMAXPROCS(prev)
			rep.Scaling = append(rep.Scaling, sk)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (cores=%d workers=%d)\n", *out, rep.Cores, rep.Workers)
	for _, k := range rep.Kernels {
		fmt.Printf("  %-18s serial %8.3fms  parallel %8.3fms  speedup %.2fx\n",
			k.Name, k.SerialSeconds*1e3, k.ParallelSeconds*1e3, k.Speedup)
	}
	for _, sk := range rep.Scaling {
		fmt.Printf("  scaling %-10s", sk.Name)
		for _, p := range sk.Points {
			fmt.Printf("  p=%d %.3fms (%.2fx)", p.GoMaxProcs, p.Seconds*1e3, p.Speedup)
		}
		fmt.Println()
	}

	if *comparePth != "" || *maxTraceOv > 0 {
		if err := gate(rep, *comparePth, *tolerance, *maxTraceOv, *force); err != nil {
			fatal(err)
		}
		fmt.Println("bench gate passed")
	}
}

// measure times serial and parallel variants, best-of-reps, after one
// untimed warmup each.
func measure(name string, reps int, serial, par func()) Kernel {
	s := bestOf(reps, serial)
	p := bestOf(reps, par)
	return Kernel{Name: name, SerialSeconds: s, ParallelSeconds: p, Speedup: s / p, Reps: reps}
}

// measureOverhead times fn three ways — no tracer, disabled tracer,
// enabled tracer (ring sink) — and reports two rows reusing the
// serial/parallel columns as untraced/traced. The prior global tracer
// is restored afterwards so -trace capture resumes.
func measureOverhead(name string, reps int, fn func()) []Kernel {
	prev := trace.Global()
	defer trace.SetGlobal(prev)

	trace.SetGlobal(nil)
	base := bestOf(reps, fn)

	off := trace.New()
	off.SetEnabled(false)
	trace.SetGlobal(off)
	offT := bestOf(reps, fn)

	on := trace.New(trace.NewRing(4096))
	trace.SetGlobal(on)
	onT := bestOf(reps, fn)

	note := "serial column = untraced, parallel column = traced; speedup = inverse overhead"
	return []Kernel{
		{Name: "trace-off-" + name, SerialSeconds: base, ParallelSeconds: offT, Speedup: base / offT, Reps: reps, Note: note},
		{Name: "trace-on-" + name, SerialSeconds: base, ParallelSeconds: onT, Speedup: base / onT, Reps: reps, Note: note},
	}
}

func bestOf(reps int, fn func()) float64 {
	fn() // warmup
	b := time.Duration(1<<62 - 1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < b {
			b = d
		}
	}
	return b.Seconds()
}

func buildNetlist(n int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.AddModules(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddNet(fmt.Sprintf("c%d", i), i, i+1); err != nil {
			fatal(err)
		}
	}
	// Deterministic pseudo-random extra nets without math/rand: a
	// multiplicative congruence spreads the endpoints well enough for a
	// timing instance.
	state := uint64(12345)
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	for e := 0; e < 5*n/2; e++ {
		u, v, z := next(n), next(n), next(n)
		if u == v || v == z || u == z {
			continue
		}
		if err := b.AddNet(fmt.Sprintf("r%d", e), u, v, z); err != nil {
			fatal(err)
		}
	}
	return b.Build()
}

func buildGraph(n int) *graph.Graph {
	g, err := graph.FromHypergraph(buildNetlist(n), graph.PartitioningSpecific, 0)
	if err != nil {
		fatal(err)
	}
	return g
}

func mustPartition(h *hypergraph.Hypergraph, m spectral.Method, workers int) {
	if _, err := spectral.Partition(h, spectral.Options{K: 2, Method: m, Parallelism: workers}); err != nil {
		fatal(err)
	}
}

func mustSolve(q interface {
	Dim() int
	MatVec(x, y []float64)
}, workers int) {
	if _, err := eigen.Lanczos(q, 8, &eigen.LanczosOptions{Workers: workers}); err != nil {
		fatal(err)
	}
}

func mustOrder(g *graph.Graph, dec *eigen.Decomposition, workers int) {
	opts := melo.NewOptions()
	opts.D = 8
	opts.Workers = workers
	if _, err := melo.Order(g, dec, opts); err != nil {
		fatal(err)
	}
}

// parseScalingLevels parses the -scaling CSV ("1,2,4") into GOMAXPROCS
// values. An empty string disables the scaling suite.
func parseScalingLevels(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var levels []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("-scaling: %q is not a positive GOMAXPROCS value", part)
		}
		levels = append(levels, v)
	}
	return levels, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpar:", err)
	os.Exit(1)
}
