// Command benchpar measures the serial-vs-parallel throughput of the
// hot numerical kernels (row-sharded MatVec, Lanczos, MELO ordering)
// and writes a machine-readable baseline to BENCH_parallel.json.
//
// Usage:
//
//	benchpar [-n 20000] [-workers 0] [-reps 5] [-out BENCH_parallel.json]
//
// The report records runtime.NumCPU so a baseline captured on a small
// machine is not mistaken for a scaling claim: speedups near 1.0 with
// cores=1 are the expected, honest result. On >= 4 cores the MatVec
// speedup is the ISSUE's >= 2x acceptance gauge.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/melo"
	"repro/internal/parallel"
)

// Report is the top-level BENCH_parallel.json document.
type Report struct {
	// Cores is runtime.NumCPU on the measuring machine; speedups are
	// only meaningful relative to it.
	Cores int `json:"cores"`
	// Workers is the parallel worker count the "parallel" timings used.
	Workers int `json:"workers"`
	// GoMaxProcs is the scheduler's thread bound at measurement time.
	GoMaxProcs int `json:"gomaxprocs"`
	// N is the module count of the synthesized netlist for MatVec.
	N int `json:"n"`
	// Kernels holds one entry per measured kernel.
	Kernels []Kernel `json:"kernels"`
}

// Kernel is one serial-vs-parallel measurement.
type Kernel struct {
	Name            string  `json:"name"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Reps            int     `json:"reps"`
}

func main() {
	var (
		n       = flag.Int("n", 20000, "modules in the synthesized MatVec netlist")
		workers = flag.Int("workers", 0, "parallel worker count (0 = NumCPU)")
		reps    = flag.Int("reps", 5, "repetitions per timing (best-of)")
		out     = flag.String("out", "BENCH_parallel.json", "output path")
	)
	flag.Parse()
	w := parallel.Workers(*workers)

	rep := Report{Cores: runtime.NumCPU(), Workers: w, GoMaxProcs: runtime.GOMAXPROCS(0), N: *n}

	big := buildGraph(*n)
	q := big.Laplacian()
	x := make([]float64, big.N())
	for i := range x {
		x[i] = float64(i%13) * 0.3
	}
	y := make([]float64, big.N())
	rep.Kernels = append(rep.Kernels, measure("matvec", *reps,
		func() { q.MatVec(x, y) },
		func() { q.MatVecPar(x, y, w) },
	))

	mid := buildGraph(4000)
	qm := mid.Laplacian()
	rep.Kernels = append(rep.Kernels, measure("lanczos", *reps,
		func() { mustSolve(qm, 1) },
		func() { mustSolve(qm, w) },
	))

	small := buildGraph(2000)
	dec, err := eigen.SmallestEigenpairs(small.Laplacian(), 9)
	if err != nil {
		fatal(err)
	}
	rep.Kernels = append(rep.Kernels, measure("melo-order", *reps,
		func() { mustOrder(small, dec, 1) },
		func() { mustOrder(small, dec, w) },
	))

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (cores=%d workers=%d)\n", *out, rep.Cores, rep.Workers)
	for _, k := range rep.Kernels {
		fmt.Printf("  %-10s serial %8.3fms  parallel %8.3fms  speedup %.2fx\n",
			k.Name, k.SerialSeconds*1e3, k.ParallelSeconds*1e3, k.Speedup)
	}
}

// measure times serial and parallel variants, best-of-reps, after one
// untimed warmup each.
func measure(name string, reps int, serial, par func()) Kernel {
	best := func(fn func()) float64 {
		fn() // warmup
		b := time.Duration(1<<62 - 1)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			fn()
			if d := time.Since(t0); d < b {
				b = d
			}
		}
		return b.Seconds()
	}
	s := best(serial)
	p := best(par)
	return Kernel{Name: name, SerialSeconds: s, ParallelSeconds: p, Speedup: s / p, Reps: reps}
}

func buildGraph(n int) *graph.Graph {
	b := hypergraph.NewBuilder()
	b.AddModules(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddNet(fmt.Sprintf("c%d", i), i, i+1); err != nil {
			fatal(err)
		}
	}
	// Deterministic pseudo-random extra nets without math/rand: a
	// multiplicative congruence spreads the endpoints well enough for a
	// timing instance.
	state := uint64(12345)
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	for e := 0; e < 5*n/2; e++ {
		u, v, z := next(n), next(n), next(n)
		if u == v || v == z || u == z {
			continue
		}
		if err := b.AddNet(fmt.Sprintf("r%d", e), u, v, z); err != nil {
			fatal(err)
		}
	}
	g, err := graph.FromHypergraph(b.Build(), graph.PartitioningSpecific, 0)
	if err != nil {
		fatal(err)
	}
	return g
}

func mustSolve(q interface {
	Dim() int
	MatVec(x, y []float64)
}, workers int) {
	if _, err := eigen.Lanczos(q, 8, &eigen.LanczosOptions{Workers: workers}); err != nil {
		fatal(err)
	}
}

func mustOrder(g *graph.Graph, dec *eigen.Decomposition, workers int) {
	opts := melo.NewOptions()
	opts.D = 8
	opts.Workers = workers
	if _, err := melo.Order(g, dec, opts); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpar:", err)
	os.Exit(1)
}
