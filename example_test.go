package spectral_test

// Runnable godoc examples for the public API. Examples without Output
// comments are compiled (not executed) by go test; the deterministic ones
// verify their output.

import (
	"fmt"
	"log"
	"strings"

	spectral "repro"
)

// ExamplePartition shows the canonical pipeline: build a netlist,
// partition it with MELO, inspect the metrics.
func ExamplePartition() {
	// A tiny netlist: two triangles bridged by one net.
	src := `net t1 a b
net t2 b c
net t3 a c
net t4 d e
net t5 e f
net t6 d f
net bridge c d
`
	_, h, err := spectral.LoadNetlist(strings.NewReader(src))
	if err != nil {
		log.Fatal(err)
	}
	p, err := spectral.Partition(h, spectral.Options{K: 2, Method: spectral.MELO, D: 3, MinFrac: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cut nets:", spectral.NetCut(h, p))
	fmt.Println("sizes:", p.Sizes())
	// Output:
	// cut nets: 1
	// sizes: [3 3]
}

// ExampleOrderModules exposes the raw MELO ordering for custom splits.
func ExampleOrderModules() {
	src := "net a m0 m1\nnet b m1 m2\nnet c m2 m3\n"
	_, h, err := spectral.LoadNetlist(strings.NewReader(src))
	if err != nil {
		log.Fatal(err)
	}
	order, err := spectral.OrderModules(h, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	// A path netlist orders monotonically end to end.
	fmt.Println(len(order), "modules ordered")
	// Output:
	// 4 modules ordered
}

// ExampleGenerateBenchmark synthesizes one of the paper's Table 1
// circuits.
func ExampleGenerateBenchmark() {
	h, err := spectral.GenerateBenchmark("prim1", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prim1: %d modules, %d nets, %d pins\n",
		h.NumModules(), h.NumNets(), h.NumPins())
	// Output:
	// prim1: 833 modules, 902 nets, 2908 pins
}

// ExampleCluster builds a hierarchy and extracts partitionings at several
// granularities.
func ExampleCluster() {
	h, err := spectral.GenerateBenchmark("bm1", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := spectral.Cluster(h, 16)
	if err != nil {
		log.Fatal(err)
	}
	p, err := tree.Flatten(h, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clusters:", p.K)
	// Output:
	// clusters: 4
}
