// Maxcut: the paper's §3 shows the vector-partitioning view also covers
// MAXIMUM cut — with the sqrt(λ_j) scaling, maximizing Σ_h ‖Y_h‖² is
// maximizing the cut. This example compares the probe-rounding heuristic
// (Goemans–Williamson-style hyperplane probes in the eigenvector space)
// against greedy local search and the exact optimum on small graphs.
//
//	go run ./examples/maxcut
package main

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/maxcut"
)

func main() {
	fmt.Printf("%-22s %-8s %-8s %-8s %-8s\n", "graph", "total W", "greedy", "probe", "optimum")
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"K8", graph.Complete(8)},
		{"C9 (odd cycle)", graph.Cycle(9)},
		{"C10 (even cycle)", graph.Cycle(10)},
		{"4x4 grid", graph.Grid(4, 4)},
		{"random n=16", graph.RandomConnected(16, 40, 7)},
		{"two clusters", graph.TwoClusters(8, 8, 3, 1, 5)},
	}
	for _, c := range cases {
		var total float64
		for _, e := range c.g.Edges() {
			total += e.W
		}
		_, greedy := maxcut.Greedy(c.g, 1)
		_, probe, err := maxcut.Probe(c.g, maxcut.ProbeOptions{Probes: 200, Seed: 1})
		if err != nil {
			fmt.Println("probe error:", err)
			return
		}
		_, opt := maxcut.BruteForce(c.g)
		fmt.Printf("%-22s %-8.1f %-8.1f %-8.1f %-8.1f\n", c.name, total, greedy, probe, opt)
	}
	fmt.Println("\nthe probe heuristic rounds random directions in the full eigenvector")
	fmt.Println("space; with all n eigenvectors the objective equals the (doubled) cut")
	fmt.Println("exactly, so better vector partitions ARE better cuts.")
}
