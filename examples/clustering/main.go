// Clustering: hierarchical netlist clustering by recursive MELO
// bipartitioning — the paper's motivating CAD application ("top-down
// hierarchical cell placement ... partitioning is used to divide the
// system into smaller, more manageable components").
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"os"

	spectral "repro"
)

func main() {
	h, err := spectral.GenerateBenchmark("bm1", 0.12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit bm1 (scaled): %d modules, %d nets\n\n", h.NumModules(), h.NumNets())

	tree, err := spectral.Cluster(h, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dendrogram (each split annotated with its ratio cut):")
	tree.Dendrogram(os.Stdout, nil)

	fmt.Println("\nflattened partitionings extracted from the same tree:")
	for _, k := range []int{2, 4, 6} {
		p, err := tree.Flatten(h, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%d: sizes %v, net cut %d, scaled cost %.5g\n",
			p.K, p.Sizes(), spectral.NetCut(h, p), spectral.ScaledCost(h, p))
	}
	fmt.Println("\none hierarchy serves every k — the cut structure is discovered once.")
}
