// Multiway: the paper's Table 4 experiment in miniature — compare MELO
// against the RSB, KP and SFC baselines for several cluster counts on one
// circuit, reporting Scaled Cost (lower is better).
//
//	go run ./examples/multiway
package main

import (
	"fmt"
	"log"

	spectral "repro"
)

func main() {
	h, err := spectral.GenerateBenchmark("test05", 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit test05 (scaled): %d modules, %d nets\n\n",
		h.NumModules(), h.NumNets())

	methods := []spectral.Method{spectral.RSB, spectral.KP, spectral.SFC, spectral.MELO}
	fmt.Printf("%-4s", "k")
	for _, m := range methods {
		fmt.Printf("%-12s", m)
	}
	fmt.Println()
	for _, k := range []int{2, 4, 8} {
		fmt.Printf("%-4d", k)
		for _, m := range methods {
			p, err := spectral.Partition(h, spectral.Options{K: k, Method: m})
			if err != nil {
				log.Fatalf("%v k=%d: %v", m, k, err)
			}
			fmt.Printf("%-12.4g", spectral.ScaledCost(h, p)*1e4)
		}
		fmt.Println()
	}
	fmt.Println("\nScaled Cost x 1e4; MELO uses a single d=10 ordering here — the full")
	fmt.Println("Table 4 protocol (best of many orderings) lives in cmd/experiments.")
}
