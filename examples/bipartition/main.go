// Bipartition: the paper's Table 5 experiment in miniature — balanced
// (45-55%) two-way partitioning with SB, the analytical-placement
// baseline, and MELO, plus the effect of FM post-refinement.
//
//	go run ./examples/bipartition
package main

import (
	"fmt"
	"log"

	spectral "repro"
)

func main() {
	h, err := spectral.GenerateBenchmark("struct", 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit struct (scaled): %d modules, %d nets\n\n",
		h.NumModules(), h.NumNets())

	type variant struct {
		label string
		opts  spectral.Options
	}
	variants := []variant{
		{"SB (1 eigenvector)", spectral.Options{K: 2, Method: spectral.SB}},
		{"analytical placement", spectral.Options{K: 2, Method: spectral.Placement}},
		{"MELO d=10", spectral.Options{K: 2, Method: spectral.MELO, D: 10}},
		{"MELO d=10 + FM", spectral.Options{K: 2, Method: spectral.MELO, D: 10, Refine: true}},
	}
	fmt.Printf("%-22s %-8s %-10s %s\n", "method", "cut", "ratio cut", "sizes")
	for _, v := range variants {
		p, err := spectral.Partition(h, v.opts)
		if err != nil {
			log.Fatalf("%s: %v", v.label, err)
		}
		fmt.Printf("%-22s %-8d %-10.3g %v\n",
			v.label, spectral.NetCut(h, p), spectral.RatioCut(h, p)*1e3, p.Sizes())
	}
	fmt.Println("\nratio cut x 1e3; every split keeps each side >= 45% of the modules.")
}
