// Placement: the quadratic-placement lineage of the paper's machinery —
// Hall's spectral placement [27] and pad-constrained placement (the
// formulation behind the PARABOLI-style baseline). Compares spectral
// placements of a benchmark netlist against random placement by
// half-perimeter wirelength (HPWL).
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"log"
	"math/rand"

	spectral "repro"
	"repro/internal/graph"
	"repro/internal/place"
)

func main() {
	h, err := spectral.GenerateBenchmark("struct", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		log.Fatal(err)
	}
	n := g.N()
	fmt.Printf("circuit struct (scaled): %d modules, %d nets\n\n", n, h.NumNets())

	// Hall's 2-D spectral placement (eigenvectors 2 and 3).
	hall, err := place.Hall(g, 2)
	if err != nil {
		log.Fatal(err)
	}
	hall.Spread()

	// Pad-constrained placement: pin the four Fiedler-extreme modules to
	// the corners of the unit square.
	hall1, err := place.Hall(g, 2)
	if err != nil {
		log.Fatal(err)
	}
	corners := extremeModules(hall1)
	padded, err := place.WithPads(g, 2, []place.Pad{
		{Vertex: corners[0], At: []float64{0, 0}},
		{Vertex: corners[1], At: []float64{1, 0}},
		{Vertex: corners[2], At: []float64{0, 1}},
		{Vertex: corners[3], At: []float64{1, 1}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Random placement baseline.
	rng := rand.New(rand.NewSource(1))
	coords := make([][]float64, n)
	for i := range coords {
		coords[i] = []float64{rng.Float64(), rng.Float64()}
	}
	random := &place.Placement{Coords: coords, R: 2}

	fmt.Printf("%-24s %-12s %-14s\n", "placement", "HPWL", "quadratic WL")
	for _, row := range []struct {
		name string
		p    *place.Placement
	}{
		{"random", random},
		{"Hall spectral (2-D)", hall},
		{"pad-constrained", padded},
	} {
		fmt.Printf("%-24s %-12.2f %-14.4f\n", row.name,
			place.HPWL(h, row.p), place.QuadraticWirelength(g, row.p))
	}
	fmt.Println("\nHall's placement minimizes quadratic wirelength among balanced")
	fmt.Println("placements (value = λ2+λ3); the same eigenvectors that order MELO's")
	fmt.Println("vectors place the circuit — one spectral decomposition, many uses.")
}

// extremeModules returns the modules at the min/max of each dimension.
func extremeModules(p *place.Placement) [4]int {
	var out [4]int
	minX, maxX, minY, maxY := 0, 0, 0, 0
	for i := 1; i < p.N(); i++ {
		if p.At(i, 0) < p.At(minX, 0) {
			minX = i
		}
		if p.At(i, 0) > p.At(maxX, 0) {
			maxX = i
		}
		if p.At(i, 1) < p.At(minY, 1) {
			minY = i
		}
		if p.At(i, 1) > p.At(maxY, 1) {
			maxY = i
		}
	}
	out = [4]int{minX, maxX, minY, maxY}
	// Deduplicate defensively (degenerate geometries).
	seen := map[int]bool{}
	next := 0
	for i, v := range out {
		for seen[v] {
			v = (v + 1) % p.N()
		}
		seen[v] = true
		out[i] = v
		_ = next
	}
	return out
}
