// Vectorspace: a numeric walk through the paper's central theorem — with
// all n eigenvectors, min-cut graph partitioning IS max-sum vector
// partitioning. The program builds a small graph, constructs the vector
// instance, verifies the identity Σ_h ‖Y_h‖² = n·H − f(P) for every
// bipartition, and shows that the two problems share their optimum.
//
//	go run ./examples/vectorspace
package main

import (
	"fmt"
	"log"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/vecpart"
)

func main() {
	// Two triangles joined by a single edge: the optimal bipartition is
	// obvious, which makes the equivalence easy to see.
	g := graph.MustNew(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1}, {U: 3, V: 5, W: 1},
		{U: 2, V: 3, W: 1},
	})
	dec, err := eigen.SymEig(g.LaplacianDense())
	if err != nil {
		log.Fatal(err)
	}
	n := g.N()
	fmt.Print("Laplacian spectrum: ")
	for _, l := range dec.Values {
		fmt.Printf("%.3f ", l)
	}
	fmt.Println()

	H := vecpart.ChooseH(g.TotalDegree(), dec.Values, n) // = λ_n at d = n
	vecs, err := vecpart.FromDecomposition(dec, n, vecpart.MaxSum, H)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vector instance: d = n = %d, H = %.3f, y_i[j] = sqrt(H-λ_j)·U[i][j]\n\n", n, H)

	// Enumerate every bipartition; the identity must hold for all, and
	// the argmax of the vector objective must be the min cut.
	fmt.Printf("%-22s %-10s %-14s %-10s\n", "partition", "cut f(P)", "Σ‖Y_h‖²", "n·H − f")
	type row struct {
		assign []int
		f, obj float64
	}
	var bestCut, bestObj *row
	for mask := 1; mask < (1<<n)/2; mask++ {
		assign := make([]int, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				assign[i] = 1
			}
		}
		p := partition.MustNew(assign, 2)
		r := &row{assign, partition.F(g, p), vecs.SumSquaredSubsets(p)}
		if bestCut == nil || r.f < bestCut.f {
			bestCut = r
		}
		if bestObj == nil || r.obj > bestObj.obj {
			bestObj = r
		}
		// Print a few illustrative rows.
		if mask == 0b000111 || mask == 0b010101 || mask == 0b000001 {
			fmt.Printf("%-22s %-10.3f %-14.3f %-10.3f\n", fmt.Sprint(assign), r.f, r.obj, float64(n)*H-r.f)
		}
	}
	fmt.Println()
	fmt.Printf("min-cut argmin:      %v  (f = %.3f)\n", bestCut.assign, bestCut.f)
	fmt.Printf("max-Σ‖Y‖² argmax:   %v  (obj = %.3f)\n", bestObj.assign, bestObj.obj)
	if bestCut.f == bestObj.f {
		fmt.Println("the two optima coincide: graph partitioning reduced to vector partitioning ✓")
	} else {
		fmt.Println("MISMATCH — this should never happen")
	}

	// The dual: with the sqrt(λ_j) scaling, ‖y_i‖² = deg(v_i)
	// (Corollary 6).
	dual, err := vecpart.FromDecomposition(dec, n, vecpart.MinSum, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCorollary 6 (min-sum dual): ‖y_i‖² vs deg(v_i)")
	for i := 0; i < n; i++ {
		row := dual.Row(i)
		var ns float64
		for _, v := range row {
			ns += v * v
		}
		fmt.Printf("  v%d: %.3f vs %.0f\n", i, ns, g.Degree(i))
	}
}
