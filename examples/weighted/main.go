// Weighted: the paper's §3 weighted-vertex extension in action — modules
// carry areas (cells vs macros), and balance is enforced on AREA rather
// than module count: L_h ≤ w(S_h) ≤ W_h. Compares a count-balanced split
// with an area-balanced split of the same MELO ordering, plus area-aware
// FM refinement.
//
//	go run ./examples/weighted
package main

import (
	"fmt"
	"log"

	spectral "repro"
	"repro/internal/bench"
	"repro/internal/dprp"
	"repro/internal/fm"
	"repro/internal/partition"
)

func main() {
	h, err := spectral.GenerateBenchmark("test03", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	// Attach skewed cell areas (most near 1, a tail of macros).
	if err := bench.AttachAreas(h, 7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit test03 (scaled): %d modules, %d nets, total area %.1f\n\n",
		h.NumModules(), h.NumNets(), h.TotalArea())

	order, err := spectral.OrderModules(h, 10, 0)
	if err != nil {
		log.Fatal(err)
	}

	bySize, err := dprp.BestBalancedSplit(h, order, 0.45)
	if err != nil {
		log.Fatal(err)
	}
	byArea, err := dprp.BestBalancedSplitAreas(h, order, 0.45)
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string, p *partition.Partition, cut float64) {
		areas := partition.ClusterAreas(h, p)
		fmt.Printf("%-28s cut %-5.0f sizes %-12v areas [%.1f %.1f]\n",
			label, cut, p.Sizes(), areas[0], areas[1])
	}
	show("count-balanced split", bySize.Partition, bySize.Cut)
	show("area-balanced split", byArea.Partition, byArea.Cut)

	// Area-aware FM refinement of the area-balanced split.
	res, err := fm.Refine(h, byArea.Partition, fm.Options{MinFrac: 0.45})
	if err != nil {
		log.Fatal(err)
	}
	show("  + area-aware FM", res.Partition, float64(res.Cut))

	fmt.Println("\nthe count-balanced split can leave one side holding most of the die")
	fmt.Println("area; the area-balanced split and area-aware FM keep both sides")
	fmt.Println("within the 45% area bound — the constraint real placers need.")
}
