package spectral

import (
	"strings"
	"testing"
)

func TestMethodRegistryComplete(t *testing.T) {
	names := MethodNames()
	if len(names) != len(methodTable) {
		t.Fatalf("MethodNames returned %d names for %d methods", len(names), len(methodTable))
	}
	seen := make(map[string]bool)
	for i, name := range names {
		if name == "" {
			t.Fatalf("method %d has an empty name", i)
		}
		if seen[name] {
			t.Fatalf("duplicate method name %q", name)
		}
		seen[name] = true
		if methodTable[i].run == nil || methodTable[i].spec == nil {
			t.Fatalf("method %q is missing a pipeline or spec", name)
		}
		if MethodSummary(Method(i)) == "" {
			t.Fatalf("method %q has no summary", name)
		}
	}
	if MethodSummary(Method(999)) != "" {
		t.Error("unknown method has a summary")
	}
	if !strings.Contains(methodHelp(), "melo|") {
		t.Errorf("methodHelp() = %q", methodHelp())
	}
}

func TestMultilevelMELOPartitions(t *testing.T) {
	h := smallBenchmark(t)
	for _, k := range []int{2, 4} {
		p, err := Partition(h, Options{K: k, Method: MultilevelMELO, CoarsenThreshold: 8})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.K != k || p.N() != h.NumModules() {
			t.Fatalf("k=%d: got K=%d N=%d", k, p.K, p.N())
		}
		for c, s := range p.Sizes() {
			if s == 0 {
				t.Fatalf("k=%d: cluster %d empty", k, c)
			}
		}
	}
}

func TestMultilevelMELOMatchesFlatObjective(t *testing.T) {
	// The V-cycle optimizes the same net-cut objective as flat MELO; on a
	// small instance its cut should land in the same ballpark (within 2x),
	// not at a random-partition level.
	h := smallBenchmark(t)
	flat, err := Partition(h, Options{K: 2, Method: MELO})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := Partition(h, Options{K: 2, Method: MultilevelMELO, CoarsenThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	fc, mc := NetCut(h, flat), NetCut(h, ml)
	if mc > 2*fc+10 {
		t.Errorf("multilevel cut %d vs flat cut %d", mc, fc)
	}
}

func TestRecursiveBisectionPartitions(t *testing.T) {
	h := smallBenchmark(t)
	for _, k := range []int{2, 3, 5} {
		p, err := Partition(h, Options{K: k, Method: RecursiveBisection})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.K != k || p.N() != h.NumModules() {
			t.Fatalf("k=%d: got K=%d N=%d", k, p.K, p.N())
		}
		for c, s := range p.Sizes() {
			if s == 0 {
				t.Fatalf("k=%d: cluster %d empty", k, c)
			}
		}
	}
}

func TestTwoVectorTripartitionPartitions(t *testing.T) {
	h := smallBenchmark(t)
	p, err := Partition(h, Options{K: 3, Method: TwoVectorTripartition})
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 3 || p.N() != h.NumModules() {
		t.Fatalf("got K=%d N=%d", p.K, p.N())
	}
	for c, s := range p.Sizes() {
		if s == 0 {
			t.Fatalf("cluster %d empty", c)
		}
	}
	if _, err := Partition(h, Options{K: 2, Method: TwoVectorTripartition}); err == nil {
		t.Error("TwoVectorTripartition with K=2 accepted")
	}
}

func TestNewMethodSpectrumSpecs(t *testing.T) {
	if spec := (Options{Method: MultilevelMELO}).SpectrumSpec(); spec.Needed {
		t.Error("MultilevelMELO claims a reusable decomposition")
	}
	spec := (Options{Method: RecursiveBisection, K: 5}).SpectrumSpec()
	if !spec.Needed || spec.Model != ModelPartitioningSpecific || spec.D != 3 {
		t.Errorf("RecursiveBisection K=5 spec = %+v", spec)
	}
	spec = (Options{Method: TwoVectorTripartition, K: 3}).SpectrumSpec()
	if !spec.Needed || spec.D != 2 {
		t.Errorf("TwoVectorTripartition spec = %+v", spec)
	}
}

func TestMultilevelOptionValidation(t *testing.T) {
	h := smallBenchmark(t)
	if _, err := Partition(h, Options{K: 2, Method: MultilevelMELO, CoarsenThreshold: -1}); err == nil {
		t.Error("negative CoarsenThreshold accepted")
	}
	if _, err := Partition(h, Options{K: 2, Method: MultilevelMELO, MaxLevels: -1}); err == nil {
		t.Error("negative MaxLevels accepted")
	}
	// RefinePasses < 0 is the documented "disable refinement" setting.
	if _, err := Partition(h, Options{K: 2, Method: MultilevelMELO, RefinePasses: -1}); err != nil {
		t.Errorf("RefinePasses = -1 rejected: %v", err)
	}
}
