package spectral

import (
	"context"
	"math"
	"testing"

	"repro/internal/delta"
	"repro/internal/eigen"
	"repro/internal/linalg"
	"repro/internal/resilience"
	"repro/internal/trace"
)

func warmTestCtx() (context.Context, *trace.Tracer) {
	tr := trace.New()
	return trace.WithTracer(context.Background(), tr), tr
}

func warmBase(t *testing.T, scale float64, seed int64) *Netlist {
	t.Helper()
	h, err := GenerateBenchmarkSeeded("prim1", scale, seed)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return h
}

func assignsEqual(a, b *Partitioning) bool {
	if a.K != b.K || len(a.Assign) != len(b.Assign) {
		return false
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			return false
		}
	}
	return true
}

// TestDecomposeWarmAcceptedOnAreaOnlyDelta: an area-only delta leaves
// the Laplacian untouched, so the base spectrum must be accepted
// outright — no eigensolve — and the downstream partition must match a
// cold solve of the delta netlist bit-for-bit.
func TestDecomposeWarmAcceptedOnAreaOnlyDelta(t *testing.T) {
	ctx, tr := warmTestCtx()
	base := warmBase(t, 0.5, 42)
	seed, err := DecomposeCtx(ctx, base, ModelPartitioningSpecific, 10)
	if err != nil {
		t.Fatalf("base decompose: %v", err)
	}
	mut, _, err := delta.Apply(base, &delta.Delta{SetAreas: []delta.AreaChange{{Module: 3, Area: 2.5}}})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	warm, info, err := DecomposeWarmCtxPolicy(ctx, mut, ModelPartitioningSpecific, 10, seed, eigenPolicyZero())
	if err != nil {
		t.Fatalf("warm decompose: %v", err)
	}
	if info.Outcome != WarmOutcomeAccepted {
		t.Fatalf("outcome = %q (reason %q, res %g scale %g), want accepted", info.Outcome, info.Reason, info.MaxResidual, info.Scale)
	}
	if tr.Counter("eigen.warmstart.accepted") != 1 {
		t.Fatalf("accepted counter = %d, want 1", tr.Counter("eigen.warmstart.accepted"))
	}
	// The accepted spectrum's eigenvectors are the seed's, bit-for-bit.
	for j := 0; j < warm.dec.D(); j++ {
		for i := 0; i < mut.NumModules(); i++ {
			if warm.dec.Vectors.At(i, j) != seed.dec.Vectors.At(i, j) {
				t.Fatalf("accepted spectrum differs from seed at (%d,%d)", i, j)
			}
		}
	}

	opts := Options{Method: MELO, K: 2, D: 10}
	pw, err := PartitionWithSpectrum(ctx, mut, warm, opts)
	if err != nil {
		t.Fatalf("warm partition: %v", err)
	}
	pc, err := PartitionCtx(ctx, mut, opts)
	if err != nil {
		t.Fatalf("cold partition: %v", err)
	}
	if !assignsEqual(pw, pc) {
		t.Fatal("accepted warm partition differs from cold partition")
	}
	if NetCut(mut, pw) != NetCut(mut, pc) {
		t.Fatal("warm and cold cuts differ")
	}
}

// TestDecomposeWarmSeededOnStructuralDelta: removing and adding nets
// perturbs the operator beyond the acceptance tolerance; the solve must
// take the seeded-Lanczos path and agree with a cold solve's partition.
func TestDecomposeWarmSeededOnStructuralDelta(t *testing.T) {
	ctx, tr := warmTestCtx()
	base := warmBase(t, 1, 42)
	seed, err := DecomposeCtx(ctx, base, ModelPartitioningSpecific, 10)
	if err != nil {
		t.Fatalf("base decompose: %v", err)
	}
	d := &delta.Delta{
		RemoveNets: []string{base.NetNames[7]},
		AddNets:    []delta.NetChange{{Name: "eco1", Modules: []int{1, base.NumModules() - 2}}},
	}
	mut, reach, err := delta.Apply(base, d)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if reach.Nets != 2 {
		t.Fatalf("reach = %+v", reach)
	}
	warm, info, err := DecomposeWarmCtxPolicy(ctx, mut, ModelPartitioningSpecific, 10, seed, eigenPolicyZero())
	if err != nil {
		t.Fatalf("warm decompose: %v", err)
	}
	if info.Outcome != WarmOutcomeSeeded {
		t.Fatalf("outcome = %q (reason %q, res %g scale %g), want seeded", info.Outcome, info.Reason, info.MaxResidual, info.Scale)
	}
	if tr.Counter("eigen.warmstart.seeded") != 1 {
		t.Fatalf("seeded counter = %d, want 1", tr.Counter("eigen.warmstart.seeded"))
	}
	cold, err := DecomposeCtx(ctx, mut, ModelPartitioningSpecific, 10)
	if err != nil {
		t.Fatalf("cold decompose: %v", err)
	}
	// Eigenvalues agree to solver tolerance.
	for j, v := range warm.Eigenvalues() {
		if diff := math.Abs(v - cold.Eigenvalues()[j]); diff > 1e-4*(1+math.Abs(v)) {
			t.Fatalf("eigenvalue %d: warm %.12g cold %.12g", j, v, cold.Eigenvalues()[j])
		}
	}
	opts := Options{Method: MELO, K: 2, D: 10}
	pw, err := PartitionWithSpectrum(ctx, mut, warm, opts)
	if err != nil {
		t.Fatalf("warm partition: %v", err)
	}
	pc, err := PartitionWithSpectrum(ctx, mut, cold, opts)
	if err != nil {
		t.Fatalf("cold partition: %v", err)
	}
	if !assignsEqual(pw, pc) {
		t.Fatal("seeded warm partition differs from cold partition")
	}
}

// TestDecomposeWarmRejectsCorruptedSeeds: satellite coverage — a
// corrupted or mismatched seed must be rejected (counted) and fall back
// to a cold solve that still returns the right answer.
func TestDecomposeWarmRejectsCorruptedSeeds(t *testing.T) {
	base := warmBase(t, 0.5, 7)
	ctxPlain, _ := warmTestCtx()
	seed, err := DecomposeCtx(ctxPlain, base, ModelPartitioningSpecific, 10)
	if err != nil {
		t.Fatalf("base decompose: %v", err)
	}
	cold, err := DecomposeCtx(ctxPlain, base, ModelPartitioningSpecific, 10)
	if err != nil {
		t.Fatalf("cold decompose: %v", err)
	}

	corrupted := func(mutate func(dec *eigen.Decomposition)) *Spectrum {
		dec := &eigen.Decomposition{Values: linalg.CopyVec(seed.dec.Values), Vectors: seed.dec.Vectors.Clone()}
		mutate(dec)
		return &Spectrum{modules: seed.modules, model: seed.model, g: seed.g, dec: dec}
	}
	smaller := warmBase(t, 0.2, 7)
	smallerSeed, err := DecomposeCtx(ctxPlain, smaller, ModelPartitioningSpecific, 10)
	if err != nil {
		t.Fatalf("smaller decompose: %v", err)
	}

	cases := []struct {
		name string
		seed *Spectrum
	}{
		{"nan-vectors", corrupted(func(d *eigen.Decomposition) { d.Vectors.Set(11, 2, math.NaN()) })},
		{"rank-deficient", corrupted(func(d *eigen.Decomposition) {
			for i := 0; i < d.Vectors.Rows; i++ {
				d.Vectors.Set(i, 4, d.Vectors.At(i, 3))
			}
		})},
		{"dimension-mismatch", smallerSeed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, tr := warmTestCtx()
			warm, info, err := DecomposeWarmCtxPolicy(ctx, base, ModelPartitioningSpecific, 10, tc.seed, eigenPolicyZero())
			if err != nil {
				t.Fatalf("warm decompose: %v", err)
			}
			if info.Outcome != WarmOutcomeRejected {
				t.Fatalf("outcome = %q (reason %q), want rejected", info.Outcome, info.Reason)
			}
			if tr.Counter("eigen.warmstart.rejected") != 1 {
				t.Fatalf("rejected counter = %d, want 1", tr.Counter("eigen.warmstart.rejected"))
			}
			if info.Reason == "" {
				t.Fatal("rejection carries no reason")
			}
			// The fallback answer is the cold answer, bit-for-bit.
			for j := 0; j < warm.dec.D(); j++ {
				if warm.dec.Values[j] != cold.dec.Values[j] {
					t.Fatalf("fallback eigenvalue %d differs from cold", j)
				}
				for i := 0; i < base.NumModules(); i++ {
					if warm.dec.Vectors.At(i, j) != cold.dec.Vectors.At(i, j) {
						t.Fatalf("fallback vector differs from cold at (%d,%d)", i, j)
					}
				}
			}
		})
	}

	// No seed at all: outcome "cold", also counted.
	ctx, tr := warmTestCtx()
	_, info, err := DecomposeWarmCtxPolicy(ctx, base, ModelPartitioningSpecific, 10, nil, eigenPolicyZero())
	if err != nil {
		t.Fatalf("warm decompose: %v", err)
	}
	if info.Outcome != WarmOutcomeCold || tr.Counter("eigen.warmstart.cold") != 1 {
		t.Fatalf("nil seed outcome = %q, cold counter = %d", info.Outcome, tr.Counter("eigen.warmstart.cold"))
	}
}

// TestWarmColdSmokeAgreement pins the exact instance and delta sequence
// the CI incremental-smoke job replays over HTTP: prim1 at scale 1 with
// an area delta, a net swap, and a repin. Each delta's warm-started
// partition must match a cold solve of the mutated netlist bit-for-bit.
// If this test needs updating, update .github/workflows/ci.yml's
// incremental-smoke job to match.
func TestWarmColdSmokeAgreement(t *testing.T) {
	ctx, tr := warmTestCtx()
	base := warmBase(t, 1, 1)
	seed, err := DecomposeCtx(ctx, base, ModelPartitioningSpecific, 10)
	if err != nil {
		t.Fatalf("base decompose: %v", err)
	}
	deltas := []*delta.Delta{
		{SetAreas: []delta.AreaChange{{Module: 0, Area: 3}}},
		{RemoveNets: []string{base.NetNames[0]}, AddNets: []delta.NetChange{{Name: "eco-a", Modules: []int{2, 11}}}},
		{SetPins: []delta.NetChange{{Name: base.NetNames[1], Modules: []int{0, 5, 9}}}},
	}
	opts := Options{Method: MELO, K: 2, D: 10}
	for i, d := range deltas {
		mut, _, err := delta.Apply(base, d)
		if err != nil {
			t.Fatalf("delta %d apply: %v", i, err)
		}
		warm, info, err := DecomposeWarmCtxPolicy(ctx, mut, ModelPartitioningSpecific, 10, seed, eigenPolicyZero())
		if err != nil {
			t.Fatalf("delta %d warm decompose: %v", i, err)
		}
		if info.Outcome != WarmOutcomeAccepted && info.Outcome != WarmOutcomeSeeded {
			t.Fatalf("delta %d outcome = %q (reason %q) — smoke expects a warm hit", i, info.Outcome, info.Reason)
		}
		pw, err := PartitionWithSpectrum(ctx, mut, warm, opts)
		if err != nil {
			t.Fatalf("delta %d warm partition: %v", i, err)
		}
		pc, err := PartitionCtx(context.Background(), mut, opts)
		if err != nil {
			t.Fatalf("delta %d cold partition: %v", i, err)
		}
		if !assignsEqual(pw, pc) {
			t.Fatalf("delta %d: warm partition differs from cold solve", i)
		}
		if NetCut(mut, pw) != NetCut(mut, pc) {
			t.Fatalf("delta %d: warm and cold cuts differ", i)
		}
	}
	if hits := tr.Counter("eigen.warmstart.accepted") + tr.Counter("eigen.warmstart.seeded"); hits != 3 {
		t.Fatalf("warm hits = %d, want 3", hits)
	}
}

func eigenPolicyZero() resilience.EigenPolicy { return resilience.EigenPolicy{} }
