package spectral

import (
	"fmt"
	"math/bits"
)

// Stability quantifies how much a partition moved between a base
// netlist and a delta applied to it — the ECO question "how much of my
// placement does this change invalidate, and what did the cut pay?".
type Stability struct {
	// MovedModules is the number of modules whose cluster changed,
	// under the agreement-maximizing relabeling of the new partition's
	// clusters (cluster indices are arbitrary, so labelings are aligned
	// before counting).
	MovedModules int `json:"movedModules"`
	// MovedFrac is MovedModules over the module count.
	MovedFrac float64 `json:"movedFrac"`
	// BaseCut and NewCut are the net cuts of the two partitions on
	// their respective netlists; CutDelta = NewCut − BaseCut (negative
	// when the delta improved the cut).
	BaseCut  int `json:"baseCut"`
	NewCut   int `json:"newCut"`
	CutDelta int `json:"cutDelta"`
}

// maxStabilityK bounds the exact labeling alignment (subset-sum DP over
// 2^K states). Far above any K this pipeline produces.
const maxStabilityK = 20

// PartitionStability compares a base partitioning with the partitioning
// of a delta netlist over the same module population. Cluster labels
// are arbitrary on both sides, so the new partition's labels are first
// aligned to the base's by maximizing total agreement (an exact
// assignment over the K×K overlap matrix); MovedModules counts the
// disagreements that remain. Cuts are recomputed on the respective
// netlists with the facade's NetCut.
func PartitionStability(baseH, newH *Netlist, base, next *Partitioning) (*Stability, error) {
	if baseH == nil || newH == nil || base == nil || next == nil {
		return nil, fmt.Errorf("spectral: PartitionStability requires both netlists and both partitions")
	}
	n := len(base.Assign)
	if len(next.Assign) != n {
		return nil, fmt.Errorf("spectral: partitions cover %d and %d modules; deltas preserve the module population", n, len(next.Assign))
	}
	if baseH.NumModules() != n || newH.NumModules() != n {
		return nil, fmt.Errorf("spectral: partitions cover %d modules but netlists have %d and %d", n, baseH.NumModules(), newH.NumModules())
	}
	k := base.K
	if next.K > k {
		k = next.K
	}
	if k > maxStabilityK {
		return nil, fmt.Errorf("spectral: stability alignment supports K <= %d, got %d", maxStabilityK, k)
	}

	s := &Stability{
		BaseCut: NetCut(baseH, base),
		NewCut:  NetCut(newH, next),
	}
	s.CutDelta = s.NewCut - s.BaseCut

	if n > 0 && k > 0 {
		overlap := make([][]int, k)
		for i := range overlap {
			overlap[i] = make([]int, k)
		}
		for i := 0; i < n; i++ {
			overlap[next.Assign[i]][base.Assign[i]]++
		}
		s.MovedModules = n - maxAssignment(overlap)
		s.MovedFrac = float64(s.MovedModules) / float64(n)
	}
	return s, nil
}

// maxAssignment returns the maximum total weight of a perfect matching
// between rows and columns of the square weight matrix w — the best
// relabeling agreement. Subset DP: dp[mask] is the best weight matching
// the first popcount(mask) rows to the column set mask. O(K·2^K),
// exact, and plenty fast for K ≤ 20.
func maxAssignment(w [][]int) int {
	k := len(w)
	dp := make([]int, 1<<k)
	for i := range dp {
		dp[i] = -1
	}
	dp[0] = 0
	for mask := 0; mask < 1<<k; mask++ {
		if dp[mask] < 0 {
			continue
		}
		row := bits.OnesCount(uint(mask))
		if row == k {
			continue
		}
		for col := 0; col < k; col++ {
			if mask&(1<<col) != 0 {
				continue
			}
			next := mask | 1<<col
			if v := dp[mask] + w[row][col]; v > dp[next] {
				dp[next] = v
			}
		}
	}
	return dp[1<<k-1]
}
