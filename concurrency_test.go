package spectral

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestPartitionCtxConcurrent hammers the facade from many goroutines —
// some sharing one netlist, some with private copies — to prove the
// pipeline holds no hidden shared state. Run with -race.
func TestPartitionCtxConcurrent(t *testing.T) {
	shared := smallBenchmark(t)
	const goroutines = 8

	methods := []Method{MELO, SB, SFC, KP}
	var wg sync.WaitGroup
	errs := make(chan error, 2*goroutines)

	// Half the goroutines share one hypergraph; reads must be safe.
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := methods[i%len(methods)]
			k := 2
			if m != SB { // SB is a bipartitioner
				k += i % 2 * 2 // 2 or 4
			}
			p, err := PartitionCtx(context.Background(), shared, Options{K: k, Method: m})
			if err != nil {
				errs <- fmt.Errorf("shared %v k=%d: %w", m, k, err)
				return
			}
			if p.K != k || p.N() != shared.NumModules() {
				errs <- fmt.Errorf("shared %v k=%d: wrong shape", m, k)
			}
		}(i)
	}

	// The other half each generate a distinct netlist.
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := GenerateBenchmarkSeeded("prim1", 0.1, int64(100+i))
			if err != nil {
				errs <- fmt.Errorf("distinct gen %d: %w", i, err)
				return
			}
			p, err := PartitionCtx(context.Background(), h, Options{K: 2, Method: MELO})
			if err != nil {
				errs <- fmt.Errorf("distinct %d: %w", i, err)
				return
			}
			if p.N() != h.NumModules() {
				errs <- fmt.Errorf("distinct %d: wrong shape", i)
			}
		}(i)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestOrderModulesCtxConcurrent exercises concurrent orderings over one
// shared netlist and checks each result is a permutation.
func TestOrderModulesCtxConcurrent(t *testing.T) {
	h := smallBenchmark(t)
	const goroutines = 6

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			order, err := OrderModulesCtx(context.Background(), h, 4+i%3, i%2)
			if err != nil {
				errs <- fmt.Errorf("order %d: %w", i, err)
				return
			}
			seen := make([]bool, h.NumModules())
			for _, v := range order {
				if v < 0 || v >= len(seen) || seen[v] {
					errs <- fmt.Errorf("order %d: not a permutation", i)
					return
				}
				seen[v] = true
			}
			if len(order) != len(seen) {
				errs <- fmt.Errorf("order %d: length %d, want %d", i, len(order), len(seen))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPartitionWithSpectrumConcurrent shares one precomputed spectrum
// across goroutines — the reuse path must be read-only.
func TestPartitionWithSpectrumConcurrent(t *testing.T) {
	h := smallBenchmark(t)
	sp, err := Decompose(h, ModelPartitioningSpecific, 10)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := 2 + i%3
			p, err := PartitionWithSpectrum(context.Background(), h, sp, Options{K: k, Method: MELO, D: 10})
			if err != nil {
				errs <- fmt.Errorf("spectrum k=%d: %w", k, err)
				return
			}
			if p.K != k {
				errs <- fmt.Errorf("spectrum k=%d: got K=%d", k, p.K)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
