package spectral

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/resilience"
)

// failingEigenPolicy makes every eigensolve attempt fail hard: the
// sparse rungs are fault-injected, the dense rungs disabled. Any code
// path that reaches the eigensolver under this policy errors out, so a
// successful run proves the eigensolve was skipped.
func failingEigenPolicy() resilience.EigenPolicy {
	fail := make([]int, 200)
	for i := range fail {
		fail[i] = i + 1
	}
	return resilience.EigenPolicy{
		DenseDirectN:      1,
		NoDenseFallback:   true,
		MaxSparseAttempts: 1,
		Faults:            &resilience.FaultPlan{FailAttempts: fail},
	}
}

func TestDecomposeAccessors(t *testing.T) {
	h := smallBenchmark(t)
	sp, err := Decompose(h, ModelPartitioningSpecific, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Modules() != h.NumModules() {
		t.Errorf("Modules = %d, want %d", sp.Modules(), h.NumModules())
	}
	if sp.Model() != ModelPartitioningSpecific {
		t.Errorf("Model = %v", sp.Model())
	}
	if sp.D() != 10 || sp.Pairs() != 11 {
		t.Errorf("D = %d, Pairs = %d, want 10, 11", sp.D(), sp.Pairs())
	}
	vals := sp.Eigenvalues()
	if len(vals) != 11 {
		t.Fatalf("len(Eigenvalues) = %d", len(vals))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Errorf("eigenvalues not ascending at %d: %v < %v", i, vals[i], vals[i-1])
		}
	}
	if vals[0] > 1e-8 {
		t.Errorf("trivial eigenvalue = %v, want ~0", vals[0])
	}
}

func TestDecomposeValidation(t *testing.T) {
	h := smallBenchmark(t)
	if _, err := Decompose(nil, ModelPartitioningSpecific, 5); err == nil {
		t.Error("nil netlist accepted")
	}
	if _, err := Decompose(h, Model(42), 5); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := Decompose(h, ModelPartitioningSpecific, 0); err == nil {
		t.Error("d = 0 accepted")
	}
}

// A compatible spectrum must be reused outright: under a policy where
// any eigensolve fails, partitioning succeeds with the spectrum and
// fails without it.
func TestPartitionWithSpectrumSkipsEigensolve(t *testing.T) {
	h := smallBenchmark(t)
	sp, err := Decompose(h, ModelPartitioningSpecific, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []Options{
		{K: 2, Method: MELO},
		{K: 4, Method: MELO},
		{K: 2, Method: SB},
		{K: 2, Method: SFC},
		{K: 3, Method: SFC},
		{K: 4, Method: HL},
		{K: 4, Method: VKP},
	}
	for _, opts := range cases {
		// Sanity: without a spectrum the failing policy must error.
		if _, err := partitionWithSpectrumPolicy(ctx, h, nil, opts, failingEigenPolicy()); err == nil {
			t.Fatalf("%v K=%d: failing policy did not fail without a spectrum", opts.Method, opts.K)
		}
		p, err := partitionWithSpectrumPolicy(ctx, h, sp, opts, failingEigenPolicy())
		if err != nil {
			t.Errorf("%v K=%d: eigensolve ran despite compatible spectrum: %v", opts.Method, opts.K, err)
			continue
		}
		validPartition(t, h, p, opts.withDefaults().K)
	}
}

// A mismatched model or an undersized spectrum must NOT be silently
// reused: the pipeline computes a fresh decomposition instead.
func TestPartitionWithSpectrumMismatchRecomputes(t *testing.T) {
	h := smallBenchmark(t)
	ctx := context.Background()
	ps10, err := Decompose(h, ModelPartitioningSpecific, 10)
	if err != nil {
		t.Fatal(err)
	}
	// KP needs the Frankle model: with a failing policy the fresh solve
	// errors, proving the wrong-model spectrum was not reused.
	if _, err := partitionWithSpectrumPolicy(ctx, h, ps10, Options{K: 2, Method: KP}, failingEigenPolicy()); err == nil {
		t.Error("KP silently reused a partitioning-specific spectrum")
	}
	// Undersized: MELO with D=10 offered only 2 eigenvectors.
	ps2, err := Decompose(h, ModelPartitioningSpecific, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partitionWithSpectrumPolicy(ctx, h, ps2, Options{K: 2, Method: MELO, D: 10}, failingEigenPolicy()); err == nil {
		t.Error("undersized spectrum was reused for a larger request")
	}
	// And without the failing policy the same calls succeed by
	// recomputing, matching the spectrum-free pipeline exactly.
	got, err := PartitionWithSpectrum(ctx, h, ps2, Options{K: 2, Method: MELO, D: 10})
	if err != nil {
		t.Fatal(err)
	}
	want, err := PartitionCtx(ctx, h, Options{K: 2, Method: MELO, D: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Assign, want.Assign) {
		t.Error("recomputed-path result differs from PartitionCtx")
	}
}

// Reusing a spectrum of the exact size the method would solve for must
// give the identical partitioning the one-shot pipeline produces (the
// solver is deterministic). Methods that need fewer eigenvectors than
// the spectrum holds (e.g. SFC under a d=10 spectrum) take a truncated
// prefix of a larger solve, whose vectors can differ from a small
// direct solve by sign — there we require a valid result, not an
// identical one (TestPartitionWithSpectrumSkipsEigensolve covers them).
func TestPartitionWithSpectrumMatchesDirect(t *testing.T) {
	h := smallBenchmark(t)
	ctx := context.Background()
	sp, err := Decompose(h, ModelPartitioningSpecific, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{K: 2, Method: MELO},
		{K: 4, Method: MELO},
	} {
		got, err := PartitionWithSpectrum(ctx, h, sp, opts)
		if err != nil {
			t.Fatalf("%v: %v", opts.Method, err)
		}
		want, err := PartitionCtx(ctx, h, opts)
		if err != nil {
			t.Fatalf("%v: %v", opts.Method, err)
		}
		if !reflect.DeepEqual(got.Assign, want.Assign) {
			t.Errorf("%v K=%d: spectrum-reuse result differs from direct pipeline", opts.Method, opts.K)
		}
	}
}

func TestOrderModulesWithSpectrum(t *testing.T) {
	h := smallBenchmark(t)
	ctx := context.Background()
	sp, err := Decompose(h, ModelPartitioningSpecific, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Under the failing policy only the spectrum path can succeed.
	got, err := orderModulesCtx(ctx, h, sp, 10, 1, failingEigenPolicy())
	if err != nil {
		t.Fatal(err)
	}
	want, err := OrderModulesCtx(ctx, h, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("spectrum-reuse ordering differs from OrderModulesCtx")
	}
	if _, err := orderModulesCtx(ctx, h, nil, 10, 1, failingEigenPolicy()); err == nil {
		t.Error("failing policy did not fail without a spectrum")
	}
}

func TestSpectrumSpec(t *testing.T) {
	cases := []struct {
		opts Options
		want SpectrumSpec
	}{
		{Options{K: 2, Method: MELO}, SpectrumSpec{Needed: true, Model: ModelPartitioningSpecific, D: 10}},
		{Options{K: 2, Method: MELO, D: 4}, SpectrumSpec{Needed: true, Model: ModelPartitioningSpecific, D: 4}},
		{Options{K: 2, Method: SB}, SpectrumSpec{Needed: true, Model: ModelPartitioningSpecific, D: 1}},
		{Options{K: 5, Method: SFC}, SpectrumSpec{Needed: true, Model: ModelPartitioningSpecific, D: 2}},
		{Options{K: 3, Method: KP}, SpectrumSpec{Needed: true, Model: ModelFrankle, D: 3}},
		{Options{K: 8, Method: HL}, SpectrumSpec{Needed: true, Model: ModelPartitioningSpecific, D: 3}},
		{Options{K: 6, Method: VKP}, SpectrumSpec{Needed: true, Model: ModelPartitioningSpecific, D: 10}},
		{Options{K: 2, Method: RSB}, SpectrumSpec{}},
		{Options{K: 2, Method: Placement}, SpectrumSpec{}},
		{Options{K: 3, Method: Barnes}, SpectrumSpec{}},
	}
	for _, c := range cases {
		if got := c.opts.SpectrumSpec(); got != c.want {
			t.Errorf("%v K=%d: spec = %+v, want %+v", c.opts.Method, c.opts.K, got, c.want)
		}
	}
	if got := OrderSpectrumSpec(0); got.D != 10 || !got.Needed {
		t.Errorf("OrderSpectrumSpec(0) = %+v", got)
	}
}

func TestDecomposeCancelled(t *testing.T) {
	h := smallBenchmark(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DecomposeCtx(ctx, h, ModelPartitioningSpecific, 5); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
