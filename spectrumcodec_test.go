package spectral

import (
	"bytes"
	"context"
	"testing"
)

func codecNetlist(t testing.TB) *Netlist {
	t.Helper()
	h, err := GenerateBenchmark("prim1", 0.06)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// Encode→Decode→Encode must be a fixed point: the decoded spectrum
// carries exactly the bits that were stored, for both clique models and
// a range of capacities.
func TestSpectrumCodecRoundTrip(t *testing.T) {
	h := codecNetlist(t)
	for _, model := range []Model{ModelPartitioningSpecific, ModelFrankle} {
		for _, d := range []int{1, 4, 10} {
			sp, err := Decompose(h, model, d)
			if err != nil {
				t.Fatal(err)
			}
			data, err := EncodeSpectrum(sp)
			if err != nil {
				t.Fatalf("encode (%v, d=%d): %v", model, d, err)
			}
			got, err := DecodeSpectrum(data, h)
			if err != nil {
				t.Fatalf("decode (%v, d=%d): %v", model, d, err)
			}
			if got.Pairs() != sp.Pairs() || got.Model() != sp.Model() || got.Modules() != sp.Modules() {
				t.Fatalf("decoded shape (%d pairs, %v) != original (%d pairs, %v)",
					got.Pairs(), got.Model(), sp.Pairs(), sp.Model())
			}
			again, err := EncodeSpectrum(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("re-encode differs: codec is lossy for (%v, d=%d)", model, d)
			}
		}
	}
}

// A decoded spectrum must be usable exactly like the original: the
// partition computed from it is bit-identical.
func TestSpectrumCodecPartitionEquivalence(t *testing.T) {
	h := codecNetlist(t)
	sp, err := Decompose(h, ModelPartitioningSpecific, 10)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSpectrum(sp)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSpectrum(data, h)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := Options{K: 4, Method: MELO, D: 10}
	want, err := PartitionWithSpectrum(ctx, h, sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PartitionWithSpectrum(ctx, h, dec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Assign) != len(got.Assign) {
		t.Fatal("partition sizes differ")
	}
	for i := range want.Assign {
		if want.Assign[i] != got.Assign[i] {
			t.Fatalf("module %d assigned %d from original, %d from decoded", i, want.Assign[i], got.Assign[i])
		}
	}
}

// Decoding against the wrong netlist (different module count) must be
// rejected, not produce a spectrum for the wrong instance.
func TestSpectrumCodecWrongNetlistRejected(t *testing.T) {
	h := codecNetlist(t)
	sp, err := Decompose(h, ModelPartitioningSpecific, 4)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSpectrum(sp)
	if err != nil {
		t.Fatal(err)
	}
	other, err := GenerateBenchmark("prim1", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if other.NumModules() == h.NumModules() {
		t.Skip("benchmark scales collide; pick different scales")
	}
	if _, err := DecodeSpectrum(data, other); err == nil {
		t.Fatal("decode against a different netlist succeeded")
	}
}

func TestSpectrumCodecRejectsDamage(t *testing.T) {
	h := codecNetlist(t)
	sp, err := Decompose(h, ModelPartitioningSpecific, 4)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSpectrum(sp)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"magicOnly": []byte(specMagic),
		"truncated": data[:len(data)-9],
		"extended":  append(append([]byte(nil), data...), 0, 0, 0),
		"badMagic":  append([]byte("NOTSPEC\n"), data[8:]...),
	}
	for name, bad := range cases {
		if _, err := DecodeSpectrum(bad, h); err == nil {
			t.Errorf("%s: decode succeeded on damaged input", name)
		}
	}
}

// FuzzStoreDecode feeds arbitrary bytes to the spectrum-store decode
// path. The contract: DecodeSpectrum never panics, never allocates
// unboundedly, and anything it accepts must re-encode — i.e. every
// accepted payload is a well-formed spectrum, so a corrupted store
// entry can never smuggle an inconsistent decomposition into the cache.
func FuzzStoreDecode(f *testing.F) {
	h, err := GenerateBenchmark("prim1", 0.06)
	if err != nil {
		f.Fatal(err)
	}
	sp, err := Decompose(h, ModelPartitioningSpecific, 4)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := EncodeSpectrum(sp)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(specMagic))
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-3] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeSpectrum(data, h)
		if err != nil {
			return
		}
		if got.Modules() != h.NumModules() || got.Pairs() < 1 || got.Pairs() > got.Modules() {
			t.Fatalf("accepted inconsistent spectrum: %d modules, %d pairs", got.Modules(), got.Pairs())
		}
		if _, err := EncodeSpectrum(got); err != nil {
			t.Fatalf("accepted spectrum does not re-encode: %v", err)
		}
	})
}
