package spectral

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/hypergraph"
	"repro/internal/resilience"
)

// validPartition fails the test unless p is a complete, in-range k-way
// assignment of h's modules.
func validPartition(t *testing.T, h *Netlist, p *Partitioning, k int) {
	t.Helper()
	if err := checkPartitioning(h, p, k); err != nil {
		t.Fatal(err)
	}
}

// faultPolicy forces the sparse Lanczos path (so faults actually hit it)
// and attaches the plan.
func faultPolicy(plan *resilience.FaultPlan) resilience.EigenPolicy {
	return resilience.EigenPolicy{DenseDirectN: 1, Faults: plan}
}

// Each ladder rung, end to end: a fault plan drives the eigensolver down
// one recovery path and the pipeline must still return a valid
// partitioning.
func TestPartitionFaultInjectionLadder(t *testing.T) {
	h := smallBenchmark(t)
	cases := []struct {
		name string
		plan *resilience.FaultPlan
	}{
		{"seed-restart", &resilience.FaultPlan{FailAttempts: []int{1}}},
		{"krylov-escalation", &resilience.FaultPlan{StallAttempts: []int{1}}},
		{"dense-fallback", &resilience.FaultPlan{StallAttempts: []int{1, 2, 3}}},
		{"nan-breakdown", &resilience.FaultPlan{NaNAttempts: []int{1}, NaNStep: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pol := faultPolicy(tc.plan)
			p, err := partitionCtxWithPolicy(context.Background(), h, Options{K: 4, Method: MELO, D: 3}, pol)
			if err != nil {
				t.Fatal(err)
			}
			validPartition(t, h, p, 4)
			if tc.plan.Attempts() < 2 {
				t.Fatalf("fault plan never fired: %d attempts", tc.plan.Attempts())
			}
		})
	}
}

// The degradation rung: every sparse attempt stalls with only a prefix
// converged and the dense fallback is disabled, so MELO must run on a
// degraded (d' < d) decomposition — and still produce a valid result.
func TestPartitionEigenvectorDegradation(t *testing.T) {
	h := smallBenchmark(t)
	pol := faultPolicy(&resilience.FaultPlan{StallAttempts: []int{1, 2, 3}, StallConverged: 3})
	pol.NoDenseFallback = true
	p, err := partitionCtxWithPolicy(context.Background(), h, Options{K: 4, Method: MELO, D: 5}, pol)
	if err != nil {
		t.Fatal(err)
	}
	validPartition(t, h, p, 4)
}

// Exhausting every rung must yield a stage-attributed *PipelineError,
// never a partial or invalid partitioning.
func TestPartitionLadderExhausted(t *testing.T) {
	h := smallBenchmark(t)
	pol := faultPolicy(&resilience.FaultPlan{FailAttempts: []int{1, 2, 3, 4}})
	pol.NoDenseFallback = true
	p, err := partitionCtxWithPolicy(context.Background(), h, Options{K: 4, Method: MELO, D: 3}, pol)
	if p != nil {
		t.Fatal("got a partitioning despite total eigensolver failure")
	}
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PipelineError", err)
	}
	if pe.Stage != "eigen" {
		t.Fatalf("failure attributed to %q, want eigen", pe.Stage)
	}
	if !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("error chain %v lost the injected cause", err)
	}
}

func TestPartitionCtxPreCancelled(t *testing.T) {
	h := smallBenchmark(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []Method{MELO, SB, RSB} {
		if _, err := PartitionCtx(ctx, h, Options{K: 2, Method: m}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: got %v, want context.Canceled", m, err)
		}
	}
}

func TestPartitionCtxDeadline(t *testing.T) {
	h, err := GenerateBenchmark("prim2", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = PartitionCtx(ctx, h, Options{K: 4, Method: MELO})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; want within one iteration-check interval", elapsed)
	}
}

func TestOrderModulesCtxCancelled(t *testing.T) {
	h := smallBenchmark(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OrderModulesCtx(ctx, h, 3, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// disconnectedNetlist builds two clique-connected groups with no net
// between them.
func disconnectedNetlist(t *testing.T, groups ...int) *Netlist {
	t.Helper()
	b := hypergraph.NewBuilder()
	base := 0
	for gi, size := range groups {
		b.AddModules(size)
		for i := 0; i < size-1; i++ {
			name := "n" + string(rune('a'+gi)) + string(rune('0'+i))
			if err := b.AddNet(name, base+i, base+i+1); err != nil {
				t.Fatal(err)
			}
		}
		base += size
	}
	return b.Build()
}

// Disconnected netlists must flow end to end: per-component eigensolves
// feed MELO/SB, and the obvious zero-cut split must be available.
func TestPartitionDisconnectedNetlist(t *testing.T) {
	h := disconnectedNetlist(t, 8, 8)
	for _, m := range []Method{MELO, SB, RSB} {
		p, err := Partition(h, Options{K: 2, Method: m, D: 3})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		validPartition(t, h, p, 2)
		if cut := NetCut(h, p); cut != 0 {
			t.Errorf("%v: cut %d on a disconnected netlist, want 0", m, cut)
		}
	}
}

func TestPartitionDisconnectedUnevenComponents(t *testing.T) {
	h := disconnectedNetlist(t, 12, 5, 3)
	p, err := Partition(h, Options{K: 3, Method: MELO, D: 4})
	if err != nil {
		t.Fatal(err)
	}
	validPartition(t, h, p, 3)
}

// Zero net weights in an hMETIS file are legal (the in-memory model is
// unweighted); the parse and the full pipeline must both survive them.
func TestPartitionZeroWeightNets(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("6 6 1\n")
	nets := [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 1}}
	for i, net := range nets {
		w := 1
		if i%2 == 0 {
			w = 0
		}
		sb.WriteString(itoa(w) + " " + itoa(net[0]) + " " + itoa(net[1]) + "\n")
	}
	h, err := LoadHMetis(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MELO, SB, RSB} {
		p, err := Partition(h, Options{K: 2, Method: m, D: 2})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		validPartition(t, h, p, 2)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestOptionsValidation(t *testing.T) {
	h := disconnectedNetlist(t, 5, 5)
	bad := []Options{
		{K: 1},
		{K: -3},
		{K: 11},
		{K: 2, D: -1},
		{K: 2, D: 11},
		{K: 2, Scheme: 7},
		{K: 2, MinFrac: 0.7},
		{K: 2, MinFrac: -0.1},
	}
	for _, o := range bad {
		_, err := Partition(h, o)
		var pe *PipelineError
		if !errors.As(err, &pe) || pe.Stage != "validate" {
			t.Fatalf("%+v: got %v, want validate-stage PipelineError", o, err)
		}
	}
	// The zero value still means "defaults", not "invalid".
	if _, err := Partition(h, Options{}); err != nil {
		t.Fatalf("zero-value options rejected: %v", err)
	}
}

func TestValidateNetlistRejectsGarbage(t *testing.T) {
	if err := ValidateNetlist(nil); err == nil {
		t.Fatal("nil netlist accepted")
	}
	if err := ValidateNetlist(hypergraph.NewBuilder().Build()); err == nil {
		t.Fatal("empty netlist accepted")
	}
	bad := &hypergraph.Hypergraph{
		Names:    []string{"a", "b"},
		Nets:     [][]int{{0, 5}},
		NetNames: []string{"n"},
	}
	if err := ValidateNetlist(bad); err == nil {
		t.Fatal("out-of-range pin accepted")
	}
}

func TestGenerateBenchmarkBadScale(t *testing.T) {
	for _, scale := range []float64{0, -1, nan()} {
		if _, err := GenerateBenchmark("prim1", scale); err == nil {
			t.Fatalf("scale %v accepted", scale)
		}
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func TestPipelinePanicRecovery(t *testing.T) {
	pl := &pipeline{o: Options{Method: MELO}.withDefaults(), stage: resilience.StageOrdering}
	err := pl.protect(func() error { panic("boom") })
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PipelineError", err)
	}
	if !pe.Panicked || pe.Stage != "ordering" || len(pe.Stack) == 0 {
		t.Fatalf("panic not captured with stage+stack: %+v", pe)
	}
}
