package spectral

// End-to-end integration tests: every partitioning method must recover a
// planted clustered structure, and all pipeline layers must agree on the
// metrics they report.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

func cliqueGraph(h *Netlist) (*graph.Graph, error) {
	return graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
}

func cliqueF(g *graph.Graph, p *Partitioning) float64 {
	return partition.F(g, p)
}

// plantedNetlist builds k dense clusters of `size` modules with exactly
// k−1 bridge nets, as a netlist in the text format (exercising the parser
// as part of the pipeline).
func plantedNetlist(t *testing.T, k, size int, seed int64) *Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	net := 0
	for c := 0; c < k; c++ {
		base := c * size
		for i := 0; i < size-1; i++ {
			fmt.Fprintf(&sb, "net n%d m%d m%d\n", net, base+i, base+i+1)
			net++
		}
		for e := 0; e < 3*size; e++ {
			i, j := rng.Intn(size), rng.Intn(size)
			if i != j {
				fmt.Fprintf(&sb, "net n%d m%d m%d\n", net, base+i, base+j)
				net++
			}
		}
	}
	for c := 0; c+1 < k; c++ {
		fmt.Fprintf(&sb, "net bridge%d m%d m%d\n", c, c*size+rng.Intn(size), (c+1)*size+rng.Intn(size))
	}
	_, h, err := LoadNetlist(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// clusterPurity returns the fraction of planted clusters that land wholly
// inside a single output cluster.
func clusterPurity(p *Partitioning, k, size int) float64 {
	pure := 0
	for c := 0; c < k; c++ {
		first := p.Assign[c*size]
		whole := true
		for i := 1; i < size; i++ {
			if p.Assign[c*size+i] != first {
				whole = false
				break
			}
		}
		if whole {
			pure++
		}
	}
	return float64(pure) / float64(k)
}

func TestIntegrationAllMethodsRecoverPlantedBipartition(t *testing.T) {
	h := plantedNetlist(t, 2, 24, 1)
	for _, m := range []Method{MELO, SB, RSB, KP, SFC, Placement} {
		p, err := Partition(h, Options{K: 2, Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// One bridge net: every spectral method should find a cut of
		// exactly 1 on this easy instance.
		if cut := NetCut(h, p); cut > 1 {
			t.Errorf("%v: cut %d, want 1 (the bridge)", m, cut)
		}
		if purity := clusterPurity(p, 2, 24); purity < 1 {
			t.Errorf("%v: planted clusters split (purity %.2f)", m, purity)
		}
	}
}

func TestIntegrationMultiwayMethodsRecoverPlanted(t *testing.T) {
	k, size := 4, 16
	h := plantedNetlist(t, k, size, 3)
	methods := map[string]func() (*Partitioning, error){
		"melo": func() (*Partitioning, error) { return Partition(h, Options{K: k, Method: MELO}) },
		"rsb":  func() (*Partitioning, error) { return Partition(h, Options{K: k, Method: RSB}) },
		"kp":   func() (*Partitioning, error) { return Partition(h, Options{K: k, Method: KP}) },
		"vkp":  func() (*Partitioning, error) { return VectorPartition(h, k, 10) },
		"cluster-flatten": func() (*Partitioning, error) {
			tree, err := Cluster(h, size)
			if err != nil {
				return nil, err
			}
			return tree.Flatten(h, k)
		},
	}
	// Planted reference for agreement measurement.
	planted := make([]int, k*size)
	for c := 0; c < k; c++ {
		for i := 0; i < size; i++ {
			planted[c*size+i] = c
		}
	}
	ref := partition.MustNew(planted, k)

	for name, run := range methods {
		p, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.K != k {
			t.Fatalf("%s: K = %d", name, p.K)
		}
		// The planted structure cuts k−1 bridges; allow modest slack for
		// the weaker heuristics but reject structural failures.
		if cut := NetCut(h, p); cut > 3*(k-1) {
			t.Errorf("%s: cut %d, planted %d", name, cut, k-1)
		}
		// Label-invariant recovery: adjusted Rand index near 1.
		ari, err := partition.AdjustedRandIndex(ref, p)
		if err != nil {
			t.Fatal(err)
		}
		if ari < 0.8 {
			t.Errorf("%s: adjusted Rand index %.3f, want > 0.8", name, ari)
		}
	}
}

func TestIntegrationRefinementChain(t *testing.T) {
	// MELO → FM on k=2, and MELO → pairwise FM on k=4, end to end from
	// parsed text input; each stage must report consistent metrics.
	h := plantedNetlist(t, 4, 12, 5)
	for _, k := range []int{2, 4} {
		plain, err := Partition(h, Options{K: k, Method: MELO})
		if err != nil {
			t.Fatal(err)
		}
		refined, err := Partition(h, Options{K: k, Method: MELO, Refine: true})
		if err != nil {
			t.Fatal(err)
		}
		if NetCut(h, refined) > NetCut(h, plain) {
			t.Errorf("k=%d: refinement worsened the cut", k)
		}
		for c, s := range refined.Sizes() {
			if s == 0 {
				t.Errorf("k=%d: cluster %d empty after refinement", k, c)
			}
		}
	}
}

func TestIntegrationBoundsBracketHeuristics(t *testing.T) {
	// Donath–Hoffman lower bound <= clique-model F of any heuristic
	// partition with matching sizes.
	h := plantedNetlist(t, 2, 20, 7)
	p, err := Partition(h, Options{K: 2, Method: MELO, MinFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := CutLowerBound(h, p.Sizes())
	if err != nil {
		t.Fatal(err)
	}
	// F on the clique-model graph of the same netlist.
	g, err := cliqueGraph(h)
	if err != nil {
		t.Fatal(err)
	}
	f := cliqueF(g, p)
	if f < bound-1e-9 {
		t.Errorf("heuristic F %v below lower bound %v", f, bound)
	}
}

func TestIntegrationOrderingStability(t *testing.T) {
	// The full pipeline is deterministic: two runs from the same parsed
	// input produce identical orderings and partitions.
	h1 := plantedNetlist(t, 3, 10, 11)
	h2 := plantedNetlist(t, 3, 10, 11)
	o1, err := OrderModules(h1, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := OrderModules(h2, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("orderings differ across identical runs")
		}
	}
}
