package spectral

// This file is the spectrum-reuse surface of the façade: the expensive
// Laplacian eigendecomposition is separated from the cheap downstream
// partitioning so callers (notably the spectrald daemon's spectrum
// cache, internal/speccache) can pay for one eigensolve and reuse it
// across methods, K values and d-sweeps — the paper's "the more
// eigenvectors, the better" sweep pattern made incremental.

import (
	"context"
	"fmt"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// Model selects the clique expansion used to turn a netlist into a
// weighted graph before the eigensolve (see internal/graph for the cost
// functions). Decompositions are only reusable between runs that agree
// on the model.
type Model int

const (
	// ModelPartitioningSpecific is the paper's main model: the expected
	// cost of a cut net over random bipartitions equals one. Used by
	// MELO, SB, SFC, VKP, HL and the probe/cluster extensions.
	ModelPartitioningSpecific Model = iota
	// ModelStandard is the classic 1/(|e|−1) linear-placement model.
	ModelStandard
	// ModelFrankle is the (2/|e|)^{3/2} quadratic-placement model the
	// paper uses for the KP baseline.
	ModelFrankle
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case ModelPartitioningSpecific:
		return "partitioning-specific"
	case ModelStandard:
		return "standard"
	case ModelFrankle:
		return "frankle"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

func (m Model) clique() (graph.CliqueModel, error) {
	switch m {
	case ModelPartitioningSpecific:
		return graph.PartitioningSpecific, nil
	case ModelStandard:
		return graph.Standard, nil
	case ModelFrankle:
		return graph.Frankle, nil
	default:
		return 0, fmt.Errorf("spectral: unknown model %v", m)
	}
}

func modelOf(cm graph.CliqueModel) Model {
	switch cm {
	case graph.Standard:
		return ModelStandard
	case graph.Frankle:
		return ModelFrankle
	default:
		return ModelPartitioningSpecific
	}
}

// Spectrum is a reusable eigendecomposition of a netlist's clique-model
// Laplacian: the graph built from the netlist under one Model plus its
// smallest eigenpairs. A Spectrum computed once with d non-trivial
// eigenvectors satisfies any later partition or ordering run on the
// same netlist that needs the same model and at most d eigenvectors —
// regardless of method or K. Spectrums are immutable and safe for
// concurrent use.
type Spectrum struct {
	modules int
	model   graph.CliqueModel
	g       *graph.Graph
	dec     *eigen.Decomposition
}

// Modules returns the number of modules of the netlist the spectrum was
// computed from.
func (s *Spectrum) Modules() int { return s.modules }

// Model returns the clique model the spectrum was computed under.
func (s *Spectrum) Model() Model { return modelOf(s.model) }

// Pairs returns the number of eigenpairs held, including the trivial
// (constant) pair.
func (s *Spectrum) Pairs() int { return s.dec.D() }

// D returns the number of non-trivial eigenvectors held — the largest d
// a reusing run may request.
func (s *Spectrum) D() int { return s.dec.D() - 1 }

// Eigenvalues returns a copy of the eigenvalues, ascending (the first
// is the trivial ≈0 Laplacian eigenvalue).
func (s *Spectrum) Eigenvalues() []float64 {
	return append([]float64(nil), s.dec.Values...)
}

// SpectrumSpec describes the decomposition a Partition run with these
// options would compute, so callers can precompute (or cache) it and
// pass it back through PartitionWithSpectrum.
type SpectrumSpec struct {
	// Needed reports whether the method consumes a shared decomposition
	// at all. RSB, Placement and Barnes run their own internal solves
	// (or none) and cannot reuse one.
	Needed bool
	// Model is the clique model the method requires.
	Model Model
	// D is the number of non-trivial eigenvectors required.
	D int
}

// SpectrumSpec returns the decomposition requirement of a Partition run
// with these options (after defaulting), from the method registry
// (methods.go). Methods that run their own internal solves — RSB,
// Placement, Barnes, MultilevelMELO — report Needed: false.
func (o Options) SpectrumSpec() SpectrumSpec {
	d := o.withDefaults()
	if info := methodInfoOf(d.Method); info != nil {
		return info.spec(d)
	}
	return SpectrumSpec{Needed: false}
}

// OrderSpectrumSpec returns the decomposition requirement of an
// OrderModules run with the given d (0 selects the default).
func OrderSpectrumSpec(d int) SpectrumSpec {
	if d <= 0 {
		d = 10
	}
	return SpectrumSpec{Needed: true, Model: ModelPartitioningSpecific, D: d}
}

// Decompose computes the netlist's clique-model graph and its d+1
// smallest Laplacian eigenpairs (the trivial pair plus d non-trivial
// eigenvectors, clamped to the number of modules), with the same
// hardening as PartitionCtx: validation, the eigensolver resilience
// ladder, per-component solves on disconnected netlists, and panic
// recovery into *PipelineError.
func Decompose(h *Netlist, model Model, d int) (*Spectrum, error) {
	return DecomposeCtx(context.Background(), h, model, d)
}

// DecomposeCtx is Decompose with cooperative cancellation; context
// errors pass through unwrapped.
func DecomposeCtx(ctx context.Context, h *Netlist, model Model, d int) (*Spectrum, error) {
	return decomposeCtxWithPolicy(ctx, h, model, d, resilience.EigenPolicy{})
}

// DecomposeCtxPolicy is DecomposeCtx with an explicit resilience
// policy. The spectrald daemon routes its eigensolves through it so a
// deterministic fault plan (chaos testing) or tuned retry ladder can be
// injected into an otherwise production pipeline; the zero policy is
// exactly DecomposeCtx.
func DecomposeCtxPolicy(ctx context.Context, h *Netlist, model Model, d int, pol resilience.EigenPolicy) (*Spectrum, error) {
	return decomposeCtxWithPolicy(ctx, h, model, d, pol)
}

// ParseModel maps a clique-model name (as produced by Model.String) to
// its Model.
func ParseModel(s string) (Model, error) {
	for _, m := range []Model{ModelPartitioningSpecific, ModelStandard, ModelFrankle} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("spectral: unknown model %q", s)
}

func decomposeCtxWithPolicy(ctx context.Context, h *Netlist, model Model, d int, pol resilience.EigenPolicy) (_ *Spectrum, retErr error) {
	if err := ValidateNetlist(h); err != nil {
		return nil, &PipelineError{Stage: string(resilience.StageValidate), Method: MELO, Err: err}
	}
	cm, err := model.clique()
	if err != nil {
		return nil, &PipelineError{Stage: string(resilience.StageValidate), Method: MELO, Err: err}
	}
	if d < 1 {
		return nil, &PipelineError{Stage: string(resilience.StageValidate), Method: MELO, Err: fmt.Errorf("spectral: d = %d, want >= 1", d)}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, rspan := trace.Start(ctx, "decompose",
		trace.Str("model", model.String()), trace.Int("d", d), trace.Int("n", h.NumModules()))
	pl := &pipeline{ctx: ctx, root: ctx, o: Options{D: d}.withDefaults(), pol: pol, stage: resilience.StageCliqueModel}
	defer func() {
		pl.closeStage()
		if retErr != nil {
			rspan.Annotate(trace.Str("error", retErr.Error()))
		}
		rspan.End()
	}()
	var sp *Spectrum
	perr := pl.protect(func() error {
		g, dec, err := pl.decompose(h, cm, d)
		if err != nil {
			return err
		}
		sp = &Spectrum{modules: h.NumModules(), model: cm, g: g, dec: dec}
		return nil
	})
	if perr != nil {
		return nil, wrapPipelineErr(MELO, pl.stage, perr)
	}
	return sp, nil
}

// satisfies reports whether the spectrum can stand in for a fresh
// decomposition of an n-module netlist under the given model needing
// want eigenpairs (want already clamped to n).
func (s *Spectrum) satisfies(n int, model graph.CliqueModel, want int) bool {
	return s != nil && s.modules == n && s.model == model && s.dec.D() >= want
}

// PartitionWithSpectrum is PartitionCtx with a precomputed Spectrum: if
// the spectrum covers the run's requirement (same netlist size, same
// model, enough eigenvectors — see Options.SpectrumSpec), the pipeline
// reuses it and skips the eigensolve entirely; otherwise it computes a
// fresh decomposition exactly as PartitionCtx would. The caller is
// responsible for passing a spectrum of the same netlist — the pipeline
// can verify only the module count.
func PartitionWithSpectrum(ctx context.Context, h *Netlist, sp *Spectrum, opts Options) (*Partitioning, error) {
	return partitionWithSpectrumPolicy(ctx, h, sp, opts, resilience.EigenPolicy{})
}

func partitionWithSpectrumPolicy(ctx context.Context, h *Netlist, sp *Spectrum, opts Options, pol resilience.EigenPolicy) (_ *Partitioning, retErr error) {
	o := opts.withDefaults()
	if err := ValidateNetlist(h); err != nil {
		return nil, &PipelineError{Stage: string(resilience.StageValidate), Method: o.Method, Err: err}
	}
	if err := validateOptions(h, opts, o); err != nil {
		return nil, &PipelineError{Stage: string(resilience.StageValidate), Method: o.Method, Err: err}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, rspan := trace.Start(ctx, "partition",
		trace.Str("method", o.Method.String()), trace.Int("k", o.K),
		trace.Int("d", o.D), trace.Int("n", h.NumModules()))
	pl := &pipeline{ctx: ctx, root: ctx, o: o, pol: pol, sp: sp, stage: resilience.StageCliqueModel}
	defer func() {
		pl.closeStage()
		if retErr != nil {
			rspan.Annotate(trace.Str("error", retErr.Error()))
		}
		rspan.End()
	}()
	p, err := pl.run(h)
	if err != nil {
		return nil, wrapPipelineErr(o.Method, pl.stage, err)
	}
	if err := checkPartitioning(h, p, o.K); err != nil {
		return nil, &PipelineError{Stage: string(pl.stage), Method: o.Method, Err: err}
	}
	return p, nil
}

// OrderModulesWithSpectrum is OrderModulesCtx with a precomputed
// Spectrum, under the same reuse rule as PartitionWithSpectrum: a
// spectrum covering (ModelPartitioningSpecific, d) skips the eigensolve;
// anything else triggers a fresh decomposition.
func OrderModulesWithSpectrum(ctx context.Context, h *Netlist, sp *Spectrum, d, scheme int) ([]int, error) {
	return orderModulesCtx(ctx, h, sp, d, scheme, resilience.EigenPolicy{})
}
